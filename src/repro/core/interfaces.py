"""Stage interface and shared instrumentation for the semantic layer.

The three stages of paper §3.1 share a tiny contract: a stage may
*rewrite* an event in place of itself (synonyms do) and may *expand* a
derived event into additional derived events (hierarchy and mapping do).
The pipeline composes them per Figure 1; nothing else in the system
knows stage internals, so applications can add custom stages.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.provenance import DerivedEvent
from repro.model.events import Event
from repro.model.subscriptions import Subscription

__all__ = ["SemanticStage", "StageStats"]


@dataclass
class StageStats:
    """Mutable per-stage counters (reported by the benchmarks)."""

    events_in: int = 0
    events_out: int = 0
    rewrites: int = 0
    lookups: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        self.extra[name] = self.extra.get(name, 0) + amount

    def snapshot(self) -> dict[str, int]:
        data = {
            "events_in": self.events_in,
            "events_out": self.events_out,
            "rewrites": self.rewrites,
            "lookups": self.lookups,
        }
        data.update(self.extra)
        return data

    def reset(self) -> None:
        self.events_in = 0
        self.events_out = 0
        self.rewrites = 0
        self.lookups = 0
        self.extra.clear()


class SemanticStage(abc.ABC):
    """Base class for semantic stages.

    Subclasses override :meth:`rewrite_event` (identity by default)
    and/or :meth:`expand` (empty by default).  Stages must be pure with
    respect to their inputs: they return new objects and never mutate
    events in flight.
    """

    #: Stage identifier used in derivation steps.
    name = "stage"

    #: Whether this stage's output can depend on mutable state beyond
    #: the knowledge base (e.g. a stage that reads the subscription
    #: table or keeps per-call history).  Stateless stages declare
    #: ``stateful = False`` (the built-ins all do), letting the engine
    #: keep cached semantic expansions warm across subscription churn;
    #: the default is ``True`` so existing third-party subclasses keep
    #: the historical conservative behavior — the expansion cache drops
    #: on every subscribe/unsubscribe — until they opt in.  Duck-typed
    #: stages without this attribute are likewise treated as stateful.
    stateful = True

    #: Whether demand-driven expansion pruning stays sound with this
    #: stage in the pipeline.  The interest closure only models the
    #: built-in stage graph (synonym/hierarchy/mapping), so a custom
    #: stage that derives events the closure cannot predict would make
    #: pruning drop reachable matches; the engine therefore disables
    #: pruning entirely unless every extra stage declares
    #: ``interest_safe = True`` — the safe default for third-party
    #: stages, which keep today's exhaustive behavior.  Declare ``True``
    #: only for stages that consult the interest view bound by
    #: :meth:`bind_interest` (or provably never extend reachability).
    interest_safe = False

    def __init__(self) -> None:
        self.stats = StageStats()
        #: interest view for the current publication (``None`` =
        #: exhaustive); see :meth:`bind_interest`
        self._interest = None
        #: duplicate probe for the current publication (``None`` =
        #: always construct); see :meth:`bind_dedup`
        self._dedup = None

    def begin_publication(self) -> None:
        """Hook: called once by the pipeline before each publication's
        expansion, letting a stage pin per-publication state (the
        hierarchy stage pins the concept-table snapshot here so the
        fixpoint loop doesn't re-validate the knowledge-base version
        per derived event).  The default is a no-op."""

    def end_publication(self) -> None:
        """Hook: called by the pipeline when a publication's expansion
        finishes (including on error), releasing any state pinned by
        :meth:`begin_publication` so later direct ``expand()`` calls
        never observe a stale snapshot.  The default is a no-op."""

    def bind_interest(self, interest) -> None:
        """Hook: receive the engine's live
        :class:`~repro.core.interest.InterestIndex` view for the
        current publication (``None`` = expand exhaustively).  The
        pipeline binds it before the expansion and unbinds it in the
        same ``finally`` that releases :meth:`begin_publication` state.
        The default stores it on ``self._interest``; stages that never
        consult the view keep today's exhaustive behavior."""
        self._interest = interest

    def bind_dedup(self, dedup) -> None:
        """Hook: receive the pipeline's per-publication duplicate probe
        (``None`` between publications).

        A stage that can compute a candidate's content signature
        without constructing it may ask ``dedup.should_skip(...)``
        whether equal content is already integrated at a
        cheaper-or-equal chain cost, and skip the construction
        entirely — a pure work-skip with no behavioral effect, since
        the pipeline's dedup would have discarded the candidate anyway.
        The default stores it on ``self._dedup``; stages that ignore it
        simply construct every candidate as before."""
        self._dedup = dedup

    def rewrite_event(self, event: Event) -> tuple[Event, tuple]:
        """Rewrite *event*, returning ``(new_event, derivation_steps)``.

        The default is the identity rewrite.
        """
        return event, ()

    def rewrite_subscription(self, subscription: Subscription) -> Subscription:
        """Rewrite a subscription at insertion time (Figure 1 applies
        only the synonym stage to subscriptions)."""
        return subscription

    def expand(
        self, derived: DerivedEvent, *, generality_budget: int | None = None
    ) -> Iterable[DerivedEvent]:
        """Produce additional derived events from *derived*.

        ``generality_budget`` is the remaining hierarchy distance this
        chain may still climb (``None`` = unbounded); stages that do
        not generalize ignore it.  The input event itself must not be
        re-yielded.
        """
        return ()

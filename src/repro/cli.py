"""Command-line interface: ``stopss``.

Subcommands:

``stopss demo``
    Run the job-finder demonstration scenario in both modes and print
    the comparison (paper §4 in one command).
``stopss match``
    Match one event against one subscription, explaining the result.
``stopss explain``
    Show the full semantic expansion of an event.
``stopss serve``
    Serve the demonstration web application over HTTP.
``stopss kb``
    Print knowledge-base statistics.
``stopss recover``
    Rebuild a broker from a ``--durable`` journal directory and print
    what recovery found.
``stopss bench``
    Build a named stress world (``--world``, ``--list`` for the
    catalog), publish a seeded workload through it, and optionally run
    a flash-crowd churn storm — see docs/WORKLOADS.md.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.broker.broker import Broker
from repro.broker.durability import recover
from repro.broker.sharding import DEFAULT_REQUEST_TIMEOUT, ShardedBroker
from repro.broker.supervision import FaultPlan
from repro.core.config import SemanticConfig
from repro.core.engine import SToPSS
from repro.errors import ConfigError, ReproError
from repro.metrics.aggregate import (
    durability_summary,
    publish_path_summary,
    supervision_summary,
)
from repro.metrics.report import Table
from repro.model.parser import parse_event, parse_subscription
from repro.ontology.domains import build_demo_knowledge_base, build_jobs_knowledge_base
from repro.webapp.app import JobFinderWebApp
from repro.workload.jobfinder import JobFinderScenario, JobFinderSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stopss",
        description="S-ToPSS: Semantic Toronto Publish/Subscribe System (VLDB 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the job-finder demo in both modes")
    demo.add_argument("--companies", type=int, default=10)
    demo.add_argument("--candidates", type=int, default=30)
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument(
        "--shards",
        type=int,
        default=1,
        help="subscription-partitioned engine replicas behind the broker "
        "(1 = the plain single engine; values < 1 are rejected)",
    )
    demo.add_argument(
        "--executor",
        choices=("serial", "threads", "process"),
        default="threads",
        help="publish fan-out executor when --shards > 1: serial = inline, "
        "threads = GIL-bound thread pool, process = one worker process "
        "per shard (real multicore wall-clock; see docs/CONCURRENCY.md)",
    )
    demo.add_argument(
        "--backend",
        choices=("python", "numpy"),
        default="python",
        help="matching kernel preference (numpy degrades to the scalar "
        "backend when numpy is not installed)",
    )
    demo.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="bound on one shard-worker round-trip before the worker is "
        "presumed hung and respawned (process executor; default "
        f"{int(DEFAULT_REQUEST_TIMEOUT)}s)",
    )
    demo.add_argument(
        "--chaos",
        type=int,
        default=None,
        metavar="SEED",
        help="run the demo trace under a seeded FaultPlan that kills, "
        "hangs, and corrupts shard workers mid-stream (requires "
        "--shards > 1 and --executor process) and print the recovery "
        "health columns; same seed, same faults — see docs/RESILIENCE.md",
    )
    demo.add_argument(
        "--durable",
        default=None,
        metavar="DIR",
        help="journal each mode's broker under DIR/<mode> (write-ahead "
        "journal + compacted snapshots); `stopss recover DIR/semantic` "
        "rebuilds it — see docs/DURABILITY.md.  The directory must not "
        "already hold state (recover it instead)",
    )

    match = sub.add_parser("match", help="match one event against one subscription")
    match.add_argument("subscription", help='e.g. "(university = Toronto) and (degree = PhD)"')
    match.add_argument("event", help='e.g. "(school, Toronto)(degree, PhD)"')
    match.add_argument("--syntactic", action="store_true", help="disable the semantic stage")
    match.add_argument("--max-generality", type=int, default=None)

    explain = sub.add_parser("explain", help="show an event's semantic expansion")
    explain.add_argument("event")
    explain.add_argument("--max-generality", type=int, default=None)

    serve = sub.add_parser("serve", help="serve the demo web application")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)

    sub.add_parser("kb", help="print knowledge-base statistics")

    recover_cmd = sub.add_parser(
        "recover", help="rebuild a broker from a durable journal directory"
    )
    recover_cmd.add_argument(
        "directory", help="a journal directory, e.g. DIR/semantic from `stopss demo --durable DIR`"
    )
    recover_cmd.add_argument(
        "--mode",
        choices=("semantic", "syntactic"),
        default="semantic",
        help="the configuration the journaled broker was *built* with "
        "(reconfigurations are journaled and replayed; the construction-"
        "time configuration is the operator's to repeat)",
    )
    recover_cmd.add_argument(
        "--shards",
        type=int,
        default=1,
        help="recover into a sharded broker with this many replicas "
        "(journaled churn replays through the normal subscribe path, so "
        "routing rebuilds for any shard count)",
    )

    bench = sub.add_parser(
        "bench", help="build a stress world and publish a seeded workload through it"
    )
    bench.add_argument(
        "--world",
        default="mega-small",
        metavar="NAME",
        help="registered world name (see --list and docs/WORKLOADS.md)",
    )
    bench.add_argument(
        "--list", action="store_true", help="print the world catalog and exit"
    )
    bench.add_argument("--subscriptions", type=int, default=100)
    bench.add_argument("--events", type=int, default=20)
    bench.add_argument("--seed", type=int, default=1709)
    bench.add_argument(
        "--churn",
        type=int,
        default=0,
        metavar="OPS",
        help="also run a flash-crowd churn storm of OPS subscribe/"
        "unsubscribe operations and report whether the engine footprint "
        "returned to its pre-storm baseline",
    )
    return parser


def _cmd_demo(args: argparse.Namespace) -> int:
    if args.chaos is not None and (args.shards < 2 or args.executor != "process"):
        raise ConfigError(
            "--chaos needs a worker fleet to fault: pass --shards > 1 "
            "and --executor process"
        )
    spec = JobFinderSpec(
        n_companies=args.companies, n_candidates=args.candidates, seed=args.seed
    )
    table = Table(
        "job-finder demo: semantic vs. syntactic",
        ["mode", "subscriptions", "resumes", "matches", "semantic-only", "delivered"],
    )
    publish_table = Table(
        "publish path (batched matching)",
        [
            "mode",
            "batches",
            "derived",
            "pruned",
            "prune-hit%",
            "pred-evals",
            "probes-saved",
            "memo-hits",
            "vec-batch%",
            "scalar-fb",
            "cache-hit%",
            "result-hit%",
        ],
    )
    shard_table = Table(
        f"per-shard view ({args.shards} shards, {args.executor} executor)",
        [
            "mode",
            "shard",
            "executor",
            "subs",
            "derived",
            "pruned",
            "pred-evals",
            "busy-cpu-ms",
            "wire-fb",
        ],
    )
    health_table = Table(
        "data-plane health (supervision counters)"
        + (f" — chaos seed {args.chaos}" if args.chaos is not None else ""),
        [
            "mode",
            "restarts",
            "retries",
            "degraded",
            "breaker-opens",
            "snap-fb",
            "stale-drop",
            "restart-ms",
            "breakers",
        ],
    )
    durable_table = Table(
        "durability (write-ahead journal)",
        ["mode", "appends", "bytes", "compactions", "torn", "replayed", "dedup"],
    )
    for mode, config in (
        ("semantic", SemanticConfig.semantic(matching_backend=args.backend)),
        ("syntactic", SemanticConfig.syntactic(matching_backend=args.backend)),
    ):
        durability = os.path.join(args.durable, mode) if args.durable else None
        scenario = JobFinderScenario(build_jobs_knowledge_base(), spec)
        if args.shards == 1:
            broker = Broker(build_jobs_knowledge_base(), config=config, durability=durability)
        else:
            # a FaultPlan is consumed as it fires, so each mode gets a
            # fresh plan derived from the same seed (identical schedule)
            fault_plan = (
                FaultPlan.seeded(
                    args.chaos,
                    shards=args.shards,
                    ops=args.companies + args.candidates,
                )
                if args.chaos is not None
                else None
            )
            # any other value routes through the sharded broker, whose
            # own validation rejects shards < 1 (exit 2, not a silent
            # fall-back to the single engine)
            broker = ShardedBroker(
                build_jobs_knowledge_base(),
                config=config,
                shards=args.shards,
                executor=args.executor,
                request_timeout=args.shard_timeout,
                fault_plan=fault_plan,
                durability=durability,
            )
        report = scenario.run(broker)
        table.add(
            mode,
            report.subscriptions,
            report.publications,
            report.matches,
            report.semantic_matches,
            report.deliveries,
        )
        # one defensive extraction path for every engine shape — the
        # plain engine, the sharded aggregate, and any variant that
        # lacks a counter renders as 0 instead of a KeyError.
        engine_stats = broker.engine.stats()
        summary = publish_path_summary(engine_stats, broker.dispatcher.result_cache_info())
        publish_table.add(
            mode,
            summary["batches"],
            summary["derived"],
            summary["pruned"],
            round(100.0 * summary["prune_hit_rate"], 1),
            summary["predicate_evaluations"],
            summary["probes_saved"],
            summary["memo_hits"],
            round(100.0 * summary["vectorized_batch_rate"], 1),
            summary["scalar_fallbacks"],
            round(100.0 * summary["expansion_cache_hit_rate"], 1),
            round(100.0 * summary["result_cache_hit_rate"], 1),
        )
        sharding = engine_stats.get("sharding")
        if isinstance(sharding, dict):
            health = supervision_summary(engine_stats)
            health_table.add(
                mode,
                health["worker_restarts"],
                health["publish_retries"],
                health["degraded_publishes"],
                health["breaker_opens"],
                health["snapshot_fallbacks"],
                health["stale_replies_discarded"],
                round(1000.0 * health["restart_seconds"], 1),
                "/".join(health["breaker_states"]) or "-",
            )
            for index, shard_stats in enumerate(sharding.get("shard_stats", ())):
                shard_summary = publish_path_summary(shard_stats)
                shard_table.add(
                    mode,
                    index,
                    sharding.get("executor", "?"),
                    shard_stats.get("subscriptions", 0),
                    shard_summary["derived"],
                    shard_summary["pruned"],
                    shard_summary["predicate_evaluations"],
                    round(1000.0 * sharding["busy_cpu_seconds"][index], 1),
                    sharding.get("wire_fallbacks", 0),
                )
        if durability is not None:
            summary = durability_summary(broker.stats())
            durable_table.add(
                mode,
                summary["journal_appends"],
                summary["journal_bytes"],
                summary["snapshot_compactions"],
                summary["torn_tail_truncations"],
                summary["replayed_deliveries"],
                summary["dedup_drops"],
            )
        if hasattr(broker, "close"):
            broker.close()
    table.print()
    print()
    publish_table.print()
    if shard_table.rows:
        print()
        shard_table.print()
    if health_table.rows:
        print()
        health_table.print()
    if durable_table.rows:
        print()
        durable_table.print()
        print(f"journals written under {args.durable} — `stopss recover {args.durable}/semantic`")
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    config = (
        SemanticConfig.syntactic()
        if args.syntactic
        else SemanticConfig(max_generality=args.max_generality)
    )
    engine = SToPSS(build_demo_knowledge_base(), config=config)
    subscription = parse_subscription(args.subscription, sub_id="cli-sub")
    engine.subscribe(subscription)
    matches = engine.publish(parse_event(args.event, event_id="cli-event"))
    if not matches:
        print("NO MATCH")
        return 1
    for match in matches:
        print("MATCH")
        print(match.explain())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    config = SemanticConfig(max_generality=args.max_generality)
    engine = SToPSS(build_demo_knowledge_base(), config=config)
    result = engine.explain(parse_event(args.event))
    print(f"{len(result.derived)} derived event(s), {result.iterations} iteration(s)")
    if result.truncated:
        print("WARNING: expansion truncated by max_derived_events")
    for derived in result.derived:
        print()
        print(derived.explain())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:  # pragma: no cover - interactive
    webapp = JobFinderWebApp(Broker(build_demo_knowledge_base()))
    webapp.serve(args.host, args.port)
    return 0


def _cmd_kb(args: argparse.Namespace) -> int:
    kb = build_demo_knowledge_base()
    stats = kb.stats()
    table = Table(
        f"knowledge base {stats['name']!r}",
        ["domain", "concepts", "edges", "roots", "leaves", "depth"],
    )
    for domain, tstats in stats["domains"].items():  # type: ignore[union-attr]
        table.add(
            domain,
            tstats["concepts"],
            tstats["edges"],
            tstats["roots"],
            tstats["leaves"],
            tstats["depth"],
        )
    table.print()
    print(f"attribute synonyms: {stats['attribute_synonyms']}")
    print(f"value synonyms:     {stats['value_synonyms']}")
    print(f"mapping rules:      {stats['mapping_rules']}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    config = (
        SemanticConfig.semantic() if args.mode == "semantic" else SemanticConfig.syntactic()
    )
    kb = build_jobs_knowledge_base()
    if args.shards == 1:
        broker = recover(args.directory, kb, config=config)
    else:
        broker = recover(
            args.directory,
            kb,
            broker_factory=lambda kb, **kw: ShardedBroker(
                kb, shards=args.shards, config=config, **kw
            ),
        )
    try:
        report = broker.recovery
        stats = broker.stats()
        frontiers = broker.notifier.delivery_frontiers()
        table = Table(
            f"recovered broker state ({args.directory})",
            ["clients", "subscriptions", "replayed-records", "frontier-subs", "max-frontier"],
        )
        table.add(
            stats["clients"],
            stats["subscriptions"],
            report.records_replayed,
            len(frontiers),
            max(frontiers.values(), default=0),
        )
        table.print()
        print()
        durable = Table(
            "recovery counters",
            ["snapshot", "torn-tails", "replayed-deliveries", "dedup-drops", "skips"],
        )
        durable.add(
            "loaded" if report.snapshot_loaded else "none",
            report.torn_tail_truncations,
            report.replayed_deliveries,
            report.dedup_drops,
            report.replay_skips,
        )
        durable.print()
    finally:
        broker.close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.workload.worlds import (
        FlashCrowdDriver,
        FlashCrowdSpec,
        build_world,
        world_names,
        world_spec,
    )

    if args.list:
        catalog = Table(
            "world catalog (docs/WORKLOADS.md)",
            ["world", "concepts", "attrs", "depth", "branching", "rules/1k", "seed"],
        )
        for name in world_names():
            try:
                spec = world_spec(name)
            except ReproError:
                catalog.add(name, "-", "-", "-", "-", "-", "-")  # builder-backed
                continue
            catalog.add(
                name,
                spec.concepts,
                spec.attributes,
                spec.depth,
                spec.branching,
                spec.rules_per_1000,
                spec.seed,
            )
        catalog.print()
        return 0

    world = build_world(args.world)
    shape = Table(
        f"world {world.name!r}",
        ["concepts", "edges", "leaves", "depth", "synonyms", "rules", "build-s"],
    )
    shape.add(
        world.counters["world_concepts"],
        world.counters["world_edges"],
        world.counters["world_leaves"],
        world.counters["world_depth"],
        world.counters["world_synonym_spellings"],
        world.counters["world_rules"],
        round(world.build_seconds, 3),
    )
    shape.print()

    engine = SToPSS(world.kb)
    generator = world.generator(seed=args.seed)
    for subscription in generator.subscriptions(args.subscriptions):
        engine.subscribe(subscription)
    events = generator.events(args.events)
    passes = []
    matches = 0
    for leg in ("cold", "warm"):
        started = time.perf_counter()
        matches = sum(len(engine.publish(event)) for event in events)
        elapsed = time.perf_counter() - started
        passes.append((leg, elapsed))
    interest = engine.interest_info()
    publish = Table(
        f"publish ({args.subscriptions} subscriptions, {args.events} events)",
        ["leg", "seconds", "ev/s", "matches", "pruned", "index"],
    )
    for leg, elapsed in passes:
        publish.add(
            leg,
            round(elapsed, 3),
            round(args.events / elapsed, 1) if elapsed else 0.0,
            matches,
            interest["candidates_pruned"],
            interest["interest_index_size"],
        )
    print()
    publish.print()

    if args.churn > 0:
        report = FlashCrowdDriver(
            world.generator(seed=args.seed + 1),
            FlashCrowdSpec(churn_ops=args.churn, seed=args.seed),
        ).run(SToPSS(world.kb))
        churn = Table(
            f"flash-crowd churn ({report.churn_ops} ops)",
            ["ops/s", "peak-crowd", "peak-index", "publishes", "leaked"],
        )
        churn.add(
            round(report.churn_ops_per_second, 1),
            report.peak_crowd,
            report.peak_interest_index_size,
            report.publishes,
            "YES" if report.leaked else "no",
        )
        print()
        churn.print()
        return 1 if report.leaked else 0
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "bench": _cmd_bench,
    "match": _cmd_match,
    "explain": _cmd_explain,
    "serve": _cmd_serve,
    "kb": _cmd_kb,
    "recover": _cmd_recover,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

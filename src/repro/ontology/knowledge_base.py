"""The knowledge base: synonyms + taxonomies + mapping rules.

This facade is what the semantic stages in :mod:`repro.core` query.  It
aggregates the three knowledge forms of paper §3.1 and supports the
multi-domain deployment of §3.2: "the use of mapping functions allows a
single pub/sub system to be used for multiple domains simultaneously …
it is possible to provide inter-domain mapping by simply adding
additional functions."

Every lookup the matching hot path needs — root attribute, candidate
mapping rules, known-term checks — is a dictionary probe, per the
paper's "hash structures to quickly locate relevant information"
performance design.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator

from repro.errors import UnknownDomainError
from repro.model.attributes import normalize_attribute
from repro.model.events import Event
from repro.ontology.concept_table import ConceptTable
from repro.ontology.concepts import term_key
from repro.ontology.mappingdefs import MappingRule
from repro.ontology.taxonomy import Taxonomy
from repro.ontology.thesaurus import Thesaurus

__all__ = ["KnowledgeBase"]


class KnowledgeBase:
    """Aggregated domain knowledge for a running S-ToPSS instance."""

    def __init__(self, name: str = "kb") -> None:
        self.name = name
        self._attribute_synonyms = Thesaurus()
        self._value_synonyms = Thesaurus()
        self._taxonomies: dict[str, Taxonomy] = {}
        self._rules: list[MappingRule] = []
        self._rule_names: set[str] = set()
        self._rules_by_attribute: dict[str, list[MappingRule]] = {}
        self._concept_table: ConceptTable | None = None
        #: guards the snapshot rebuild: engine replicas sharing one
        #: knowledge base (the sharded broker) must all observe the
        #: same :class:`ConceptTable` object per version, or their
        #: matchers would intern equal spellings under different ids.
        self._concept_table_lock = threading.Lock()

    # -- versioning ---------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic change counter; semantic-stage caches key on it."""
        return (
            self._attribute_synonyms.version
            + self._value_synonyms.version
            + sum(t.version for t in self._taxonomies.values())
            + len(self._rules)
        )

    def concept_table(self) -> ConceptTable:
        """The interned-identifier snapshot of this knowledge base (see
        :class:`~repro.ontology.concept_table.ConceptTable`), rebuilt
        lazily whenever :attr:`version` moves.  Callers on the publish
        hot path re-fetch per operation — the fetch is one version
        compare — so they can never run on a stale id space."""
        table = self._concept_table
        if table is None or table.version != self.version:
            with self._concept_table_lock:
                table = self._concept_table
                if table is None or table.version != self.version:
                    table = ConceptTable(self)
                    self._concept_table = table
        return table

    # -- domains -------------------------------------------------------------------

    def add_domain(self, domain: str) -> Taxonomy:
        """Get or create the taxonomy for *domain*."""
        taxonomy = self._taxonomies.get(domain)
        if taxonomy is None:
            taxonomy = Taxonomy(domain)
            self._taxonomies[domain] = taxonomy
        return taxonomy

    def taxonomy(self, domain: str) -> Taxonomy:
        try:
            return self._taxonomies[domain]
        except KeyError:
            raise UnknownDomainError(
                f"no domain {domain!r} in knowledge base {self.name!r}"
            ) from None

    def domains(self) -> tuple[str, ...]:
        return tuple(self._taxonomies)

    def has_domain(self, domain: str) -> bool:
        return domain in self._taxonomies

    def _taxonomies_for(self, domain: str | None) -> Iterator[Taxonomy]:
        if domain is None:
            yield from self._taxonomies.values()
        else:
            yield self.taxonomy(domain)

    # -- attribute synonyms (stage 1 knowledge) --------------------------------------

    def add_attribute_synonyms(self, terms: Iterable[str], *, root: str | None = None) -> str:
        """Declare attribute names synonymous; returns the root
        attribute in normalized form."""
        normalized = [normalize_attribute(t) for t in terms]
        normalized_root = normalize_attribute(root) if root is not None else None
        result = self._attribute_synonyms.add_synonyms(normalized, root=normalized_root)
        return normalize_attribute(result)

    def root_attribute(self, attribute: str) -> str:
        """The root attribute for *attribute* (itself when unknown) —
        the stage-1 rewrite, one hash probe."""
        name = normalize_attribute(attribute)
        root = self._attribute_synonyms.root_of(name)
        if root is None:
            return name
        return normalize_attribute(root)

    def attribute_rename_map(self, attributes: Iterable[str]) -> dict[str, str]:
        """Rename map covering only attributes whose root differs."""
        renames: dict[str, str] = {}
        for attribute in attributes:
            name = normalize_attribute(attribute)
            root = self.root_attribute(name)
            if root != name:
                renames[name] = root
        return renames

    def attribute_synonym_groups(self) -> Iterator[frozenset[str]]:
        yield from self._attribute_synonyms.groups()

    def attribute_synonyms_of(self, attribute: str) -> frozenset[str]:
        """All spellings synonymous with *attribute* (itself included
        when known; empty set otherwise)."""
        return self._attribute_synonyms.synonyms_of(normalize_attribute(attribute))

    # -- value synonyms (distance-0 equivalences, extension) --------------------------

    def add_value_synonyms(self, terms: Iterable[str], *, root: str | None = None) -> str:
        """Declare value spellings synonymous ("car" = "automobile" =
        "auto"); the hierarchy stage treats them as the same concept."""
        return self._value_synonyms.add_synonyms(terms, root=root)

    def value_root(self, term: str) -> str | None:
        """Canonical spelling for a value term, ``None`` when unknown."""
        return self._value_synonyms.root_of(term)

    def value_synonym_groups(self) -> Iterator[frozenset[str]]:
        yield from self._value_synonyms.groups()

    def value_equivalents(self, term: str) -> frozenset[str]:
        """All spellings equivalent to *term* (synonym group plus the
        canonical taxonomy spelling), itself included."""
        spellings = set(self._value_synonyms.synonyms_of(term))
        spellings.add(term)
        for taxonomy in self._taxonomies.values():
            for spelling in tuple(spellings):
                if spelling in taxonomy:
                    spellings.add(taxonomy.canonical(spelling))
        return frozenset(spellings)

    # -- concept hierarchy (stage 2 knowledge) ------------------------------------------

    def knows_term(self, term: str, domain: str | None = None) -> bool:
        """Whether any (or the given) domain taxonomy contains *term*."""
        if not isinstance(term, str):
            return False
        try:
            for taxonomy in self._taxonomies_for(domain):
                if term in taxonomy:
                    return True
        except UnknownDomainError:
            return False
        return False

    def generalizations(
        self, term: str, *, domain: str | None = None, max_levels: int | None = None
    ) -> dict[str, int]:
        """Generalizations of *term* with minimum hop distance, merged
        across domains (minimum wins when a term appears in several).

        Value-synonym spellings of *term* are resolved first, so the
        generalizations of "auto" are those of "car".  Synonymous
        spellings themselves are **not** included — distance-0
        equivalences are reported by :meth:`value_equivalents`.
        """
        merged: dict[str, int] = {}
        seeds = self.value_equivalents(term) if isinstance(term, str) else {term}
        for taxonomy in self._taxonomies_for(domain):
            for seed in seeds:
                if seed not in taxonomy:
                    continue
                for ancestor, distance in taxonomy.ancestors(seed, max_levels).items():
                    if ancestor not in merged or merged[ancestor] > distance:
                        merged[ancestor] = distance
        self_keys = {term_key(s) for s in seeds}
        return {t: d for t, d in merged.items() if term_key(t) not in self_keys}

    def is_generalization_of(
        self, general: str, specific: str, *, domain: str | None = None
    ) -> bool:
        """Paper rule R1 test across domains, resolving value synonyms."""
        if term_key(general) in {term_key(s) for s in self.value_equivalents(specific)}:
            return False
        return general in self.generalizations(specific, domain=domain)

    def generalization_distance(
        self, specific: str, general: str, *, domain: str | None = None
    ) -> int | None:
        """Minimum upward distance, ``None`` when unrelated, ``0`` for
        synonymous/equal terms."""
        if term_key(general) in {term_key(s) for s in self.value_equivalents(specific)}:
            return 0
        return self.generalizations(specific, domain=domain).get(general)

    def canonical_term(self, term: str, *, domain: str | None = None) -> str | None:
        """Canonical display spelling of *term*: its value-synonym root
        if any, else its taxonomy spelling, else ``None`` for unknown
        terms."""
        root = self._value_synonyms.root_of(term)
        if root is not None:
            return root
        try:
            for taxonomy in self._taxonomies_for(domain):
                if term in taxonomy:
                    return taxonomy.canonical(term)
        except UnknownDomainError:
            return None
        return None

    # -- mapping rules (stage 3 knowledge) ------------------------------------------------

    def add_rule(self, rule: MappingRule) -> MappingRule:
        """Register a mapping rule; rule names must be unique."""
        if rule.name in self._rule_names:
            raise ValueError(f"mapping rule {rule.name!r} already registered")
        self._rule_names.add(rule.name)
        self._rules.append(rule)
        for attribute in rule.trigger_attributes:
            self._rules_by_attribute.setdefault(attribute, []).append(rule)
        return rule

    def add_rules(self, rules: Iterable[MappingRule]) -> None:
        for rule in rules:
            self.add_rule(rule)

    def rules(self) -> tuple[MappingRule, ...]:
        return tuple(self._rules)

    def rules_triggered_by(self, attribute: str) -> tuple[MappingRule, ...]:
        """Rules requiring *attribute* — one hash probe."""
        return tuple(self._rules_by_attribute.get(normalize_attribute(attribute), ()))

    def candidate_rules(self, event: Event) -> list[MappingRule]:
        """Rules whose required attributes all appear in *event*,
        located via the per-attribute hash index (each rule is probed at
        most once; guards are checked by the caller via
        :meth:`MappingRule.applicable`)."""
        seen: set[str] = set()
        candidates: list[MappingRule] = []
        event_attrs = set(event.attributes())
        for attribute in event_attrs:
            for rule in self._rules_by_attribute.get(attribute, ()):
                if rule.name in seen:
                    continue
                seen.add(rule.name)
                if rule.trigger_attributes <= event_attrs:
                    candidates.append(rule)
        return candidates

    # -- maintenance -----------------------------------------------------------------------

    def merge(self, other: "KnowledgeBase") -> None:
        """Union another knowledge base into this one (domains merge by
        name; duplicate rule names raise)."""
        for group in other._attribute_synonyms.groups():
            root = other._attribute_synonyms.root_of(next(iter(group)))
            self._attribute_synonyms.add_synonyms(sorted(group), root=root)
        for group in other._value_synonyms.groups():
            root = other._value_synonyms.root_of(next(iter(group)))
            self._value_synonyms.add_synonyms(sorted(group), root=root)
        for domain in other.domains():
            self.add_domain(domain).merge(other.taxonomy(domain))
        for rule in other.rules():
            self.add_rule(rule)

    def stats(self) -> dict[str, object]:
        return {
            "name": self.name,
            "domains": {d: t.stats() for d, t in self._taxonomies.items()},
            "attribute_synonyms": self._attribute_synonyms.stats(),
            "value_synonyms": self._value_synonyms.stats(),
            "mapping_rules": len(self._rules),
        }

"""DAML+OIL ontology import/export.

The paper's future-work section: "automating translation of ontologies
expressed in DAML+OIL into a more efficient representation suitable for
S-ToPSS."  This module implements that translation for the DAML+OIL /
RDFS subset semantic pub/sub needs:

* ``daml:Class`` / ``rdfs:Class``              → taxonomy concepts
* ``rdfs:subClassOf``                          → is-a edges
* ``daml:sameClassAs`` / ``equivalentClass``   → value synonyms
* ``rdf:Property`` / ``daml:DatatypeProperty`` /
  ``daml:ObjectProperty``                      → attributes
* ``daml:samePropertyAs`` / ``equivalentProperty`` → attribute synonyms
* ``rdfs:subPropertyOf``                       → attribute is-a edges

Namespace URIs are matched by *local name only*, so documents using the
DAML, OWL, or bare-RDFS vocabularies all import.  Class identifiers in
CamelCase become spaced lowercase terms ("MainframeDeveloper" →
"mainframe developer") unless an ``rdfs:label`` provides the display
form.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import DamlImportError
from repro.ontology.knowledge_base import KnowledgeBase
from repro.ontology.taxonomy import Taxonomy

__all__ = ["DamlOntology", "parse_daml", "import_daml", "export_daml"]

_CLASS_TAGS = {"class"}
_PROPERTY_TAGS = {"property", "datatypeproperty", "objectproperty"}
_SUBCLASS_TAGS = {"subclassof"}
_SUBPROPERTY_TAGS = {"subpropertyof"}
_CLASS_EQUIV_TAGS = {"sameclassas", "equivalentclass", "sameas"}
_PROPERTY_EQUIV_TAGS = {"samepropertyas", "equivalentproperty"}
_LABEL_TAGS = {"label"}

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")


def _local_name(tag_or_attr: str) -> str:
    """Strip an XML namespace: ``{uri}subClassOf`` → ``subclassof``."""
    if "}" in tag_or_attr:
        tag_or_attr = tag_or_attr.rsplit("}", 1)[1]
    return tag_or_attr.lower()


def _resource_name(reference: str) -> str:
    """Extract the entity name from an rdf reference: ``#Car`` → ``Car``,
    ``http://example.org/onto#Car`` → ``Car``."""
    ref = reference.strip()
    if "#" in ref:
        ref = ref.rsplit("#", 1)[1]
    elif "/" in ref:
        ref = ref.rstrip("/").rsplit("/", 1)[1]
    if not ref:
        raise DamlImportError(f"empty rdf resource reference {reference!r}")
    return ref


def _id_to_term(identifier: str) -> str:
    """``MainframeDeveloper`` → ``mainframe developer``;
    ``graduation_year`` → ``graduation year`` stays lower-case."""
    spaced = _CAMEL_BOUNDARY.sub(" ", identifier).replace("_", " ")
    return " ".join(spaced.split()).lower()


def _find_identifier(element: ET.Element) -> str | None:
    for attr, value in element.attrib.items():
        if _local_name(attr) in ("id", "about"):
            return _resource_name(value)
    return None


def _find_reference(element: ET.Element) -> str | None:
    for attr, value in element.attrib.items():
        if _local_name(attr) == "resource":
            return _resource_name(value)
    text = (element.text or "").strip()
    if text:
        return _resource_name(text)
    return None


@dataclass
class DamlOntology:
    """Parsed, representation-independent view of a DAML+OIL document."""

    classes: dict[str, str] = field(default_factory=dict)  # term -> description
    subclass_edges: list[tuple[str, str]] = field(default_factory=list)
    class_equivalences: list[tuple[str, str]] = field(default_factory=list)
    properties: list[str] = field(default_factory=list)
    subproperty_edges: list[tuple[str, str]] = field(default_factory=list)
    property_equivalences: list[tuple[str, str]] = field(default_factory=list)

    def into_knowledge_base(self, kb: KnowledgeBase, domain: str) -> KnowledgeBase:
        """Install this ontology into *kb* under *domain* — the paper's
        "more efficient representation suitable for S-ToPSS"."""
        taxonomy = kb.add_domain(domain)
        for term, description in self.classes.items():
            taxonomy.add_concept(term, description)
        for child, parent in self.subclass_edges:
            taxonomy.add_isa(child, parent)
        for a, b in self.class_equivalences:
            kb.add_value_synonyms([a, b])
        # Attribute generalization lives in the same domain taxonomy:
        # concept hierarchies "include both attributes and values" (§3.1).
        for child, parent in self.subproperty_edges:
            taxonomy.add_isa(child, parent)
        for a, b in self.property_equivalences:
            kb.add_attribute_synonyms([a.replace(" ", "_"), b.replace(" ", "_")])
        return kb


def parse_daml(document: str) -> DamlOntology:
    """Parse a DAML+OIL XML document into a :class:`DamlOntology`.

    Raises :class:`~repro.errors.DamlImportError` on malformed XML or
    structurally invalid definitions.
    """
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise DamlImportError(f"malformed XML: {exc}") from exc

    ontology = DamlOntology()
    for element in root:
        tag = _local_name(element.tag)
        if tag in _CLASS_TAGS:
            _parse_class(element, ontology)
        elif tag in _PROPERTY_TAGS:
            _parse_property(element, ontology)
        # Unknown top-level elements (ontology headers, comments) are
        # skipped: real DAML documents carry plenty of them.
    return ontology


def _parse_class(element: ET.Element, ontology: DamlOntology) -> None:
    identifier = _find_identifier(element)
    if identifier is None:
        raise DamlImportError("class definition lacks rdf:ID/rdf:about")
    label = None
    description = ""
    term = _id_to_term(identifier)
    edges: list[tuple[str, str]] = []
    equivalences: list[tuple[str, str]] = []
    for child in element:
        child_tag = _local_name(child.tag)
        if child_tag in _LABEL_TAGS:
            label = (child.text or "").strip() or None
        elif child_tag == "comment":
            description = (child.text or "").strip()
        elif child_tag in _SUBCLASS_TAGS:
            parent_ref = _find_reference(child)
            if parent_ref is None:
                raise DamlImportError(f"subClassOf of {identifier!r} lacks a resource")
            edges.append((term, _id_to_term(parent_ref)))
        elif child_tag in _CLASS_EQUIV_TAGS:
            other = _find_reference(child)
            if other is None:
                raise DamlImportError(f"equivalence on {identifier!r} lacks a resource")
            equivalences.append((term, _id_to_term(other)))
    if label:
        term = " ".join(label.split())
        edges = [(term, parent) for _, parent in edges]
        equivalences = [(term, other) for _, other in equivalences]
    ontology.classes.setdefault(term, description)
    ontology.subclass_edges.extend(edges)
    ontology.class_equivalences.extend(equivalences)


def _parse_property(element: ET.Element, ontology: DamlOntology) -> None:
    identifier = _find_identifier(element)
    if identifier is None:
        raise DamlImportError("property definition lacks rdf:ID/rdf:about")
    term = _id_to_term(identifier)
    ontology.properties.append(term)
    for child in element:
        child_tag = _local_name(child.tag)
        if child_tag in _SUBPROPERTY_TAGS:
            parent_ref = _find_reference(child)
            if parent_ref is None:
                raise DamlImportError(f"subPropertyOf of {identifier!r} lacks a resource")
            ontology.subproperty_edges.append((term, _id_to_term(parent_ref)))
        elif child_tag in _PROPERTY_EQUIV_TAGS:
            other = _find_reference(child)
            if other is None:
                raise DamlImportError(f"samePropertyAs of {identifier!r} lacks a resource")
            ontology.property_equivalences.append((term, _id_to_term(other)))


def import_daml(document: str, kb: KnowledgeBase, domain: str) -> KnowledgeBase:
    """One-call translation: parse *document* and install it in *kb*."""
    return parse_daml(document).into_knowledge_base(kb, domain)


# ---------------------------------------------------------------------------
# Export (round-trip support)
# ---------------------------------------------------------------------------

_DAML_HEADER = (
    '<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"\n'
    '         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"\n'
    '         xmlns:daml="http://www.daml.org/2001/03/daml+oil#">\n'
)


def _term_to_id(term: str) -> str:
    return "".join(part.capitalize() for part in term.split())


def export_daml(
    taxonomy: Taxonomy,
    *,
    class_equivalences: Iterable[tuple[str, str]] = (),
    property_equivalences: Iterable[tuple[str, str]] = (),
) -> str:
    """Serialize a taxonomy (plus optional equivalences) as DAML+OIL.

    :func:`parse_daml` round-trips the result: re-importing yields the
    same concepts and edges.
    """
    lines = [_DAML_HEADER]
    for concept in taxonomy:
        lines.append(f'  <daml:Class rdf:ID="{_term_to_id(concept.term)}">')
        lines.append(f"    <rdfs:label>{concept.term}</rdfs:label>")
        if concept.description:
            lines.append(f"    <rdfs:comment>{concept.description}</rdfs:comment>")
        for parent in taxonomy.parents(concept.term):
            lines.append(f'    <rdfs:subClassOf rdf:resource="#{_term_to_id(parent)}"/>')
        lines.append("  </daml:Class>")
    for a, b in class_equivalences:
        lines.append(f'  <daml:Class rdf:ID="{_term_to_id(a)}">')
        lines.append(f"    <rdfs:label>{a}</rdfs:label>")
        lines.append(f'    <daml:sameClassAs rdf:resource="#{_term_to_id(b)}"/>')
        lines.append("  </daml:Class>")
    for a, b in property_equivalences:
        lines.append(f'  <daml:DatatypeProperty rdf:ID="{a.replace(" ", "_")}">')
        lines.append(f'    <daml:samePropertyAs rdf:resource="#{b.replace(" ", "_")}"/>')
        lines.append("  </daml:DatatypeProperty>")
    lines.append("</rdf:RDF>")
    return "\n".join(lines)

"""Fluent construction API for knowledge bases.

Domain experts (per the paper, the people who write mapping functions
and concept hierarchies) express ontologies as chained declarations::

    kb = (KnowledgeBaseBuilder("demo")
          .attribute_synonyms("university", "school", "college")
          .domain("jobs")
              .chain("PhD", "doctorate", "graduate degree", "degree")
              .value_synonyms("car", "automobile", "auto")
              .computed("experience", "professional_experience",
                        "present_year - graduation_year")
              .up()
          .build())

The builder only orchestrates; the invariants live in the underlying
:mod:`repro.ontology` types.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.model.predicates import Predicate
from repro.model.values import Value
from repro.ontology.knowledge_base import KnowledgeBase
from repro.ontology.mappingdefs import MappingRule, OutputMode

__all__ = ["KnowledgeBaseBuilder", "DomainBuilder"]


class DomainBuilder:
    """Builder scoped to one domain; obtained from
    :meth:`KnowledgeBaseBuilder.domain`."""

    def __init__(self, parent: "KnowledgeBaseBuilder", domain: str) -> None:
        self._parent = parent
        self._domain = domain
        self._taxonomy = parent._kb.add_domain(domain)

    # -- taxonomy ----------------------------------------------------------

    def concept(self, term: str, description: str = "") -> "DomainBuilder":
        self._taxonomy.add_concept(term, description)
        return self

    def isa(self, specialized: str, *generalized: str) -> "DomainBuilder":
        """Declare ``specialized`` is-a each of *generalized*."""
        for parent_term in generalized:
            self._taxonomy.add_isa(specialized, parent_term)
        return self

    def chain(self, *terms: str) -> "DomainBuilder":
        """Most-specific-first specialization chain."""
        self._taxonomy.add_chain(*terms)
        return self

    # -- synonyms ------------------------------------------------------------

    def value_synonyms(self, *terms: str, root: str | None = None) -> "DomainBuilder":
        self._parent._kb.add_value_synonyms(terms, root=root)
        return self

    def attribute_synonyms(self, *terms: str, root: str | None = None) -> "DomainBuilder":
        self._parent._kb.add_attribute_synonyms(terms, root=root)
        return self

    # -- mapping rules -----------------------------------------------------------

    def rule(self, rule: MappingRule) -> "DomainBuilder":
        self._parent._kb.add_rule(rule)
        return self

    def computed(
        self,
        name: str,
        output_attribute: str,
        expression: str,
        *,
        mode: OutputMode = OutputMode.AUGMENT,
        description: str = "",
    ) -> "DomainBuilder":
        return self.rule(
            MappingRule.computed(
                name,
                output_attribute,
                expression,
                domain=self._domain,
                mode=mode,
                description=description,
            )
        )

    def equivalence(
        self,
        name: str,
        when: Mapping[str, Value] | Iterable[Predicate],
        then: Mapping[str, Value],
        *,
        mode: OutputMode = OutputMode.AUGMENT,
        description: str = "",
    ) -> "DomainBuilder":
        return self.rule(
            MappingRule.equivalence(
                name, when, then, domain=self._domain, mode=mode, description=description
            )
        )

    # -- navigation -----------------------------------------------------------------

    def up(self) -> "KnowledgeBaseBuilder":
        """Return to the knowledge-base scope."""
        return self._parent

    def domain(self, name: str) -> "DomainBuilder":
        """Jump straight to a sibling domain."""
        return self._parent.domain(name)

    def build(self) -> KnowledgeBase:
        return self._parent.build()


class KnowledgeBaseBuilder:
    """Top-level fluent builder; see the module docstring for usage."""

    def __init__(self, name: str = "kb") -> None:
        self._kb = KnowledgeBase(name)

    def attribute_synonyms(self, *terms: str, root: str | None = None) -> "KnowledgeBaseBuilder":
        self._kb.add_attribute_synonyms(terms, root=root)
        return self

    def value_synonyms(self, *terms: str, root: str | None = None) -> "KnowledgeBaseBuilder":
        self._kb.add_value_synonyms(terms, root=root)
        return self

    def domain(self, name: str) -> DomainBuilder:
        return DomainBuilder(self, name)

    def rule(self, rule: MappingRule) -> "KnowledgeBaseBuilder":
        self._kb.add_rule(rule)
        return self

    def merge(self, other: KnowledgeBase) -> "KnowledgeBaseBuilder":
        self._kb.merge(other)
        return self

    def build(self) -> KnowledgeBase:
        return self._kb

"""Concept hierarchies: specialization/generalization DAGs.

"Taxonomies represent a way of organizing ontological knowledge using
specialization and generalization relationships between different
concepts … more general terms are higher up in the hierarchy and are
linked to more specialized terms situated lower" (paper §3.1).

A :class:`Taxonomy` is a rooted-or-forest DAG over :class:`Concept`
nodes with *is-a* edges from the specialized child to the generalized
parent.  Multiple parents are allowed (a "station wagon" is-a "car" and
is-a "family vehicle"), cycles are rejected at insertion time, and all
upward/downward traversals report the *minimum* hop distance — the
"level of match generality" that the tolerance knob bounds.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.errors import (
    DuplicateConceptError,
    TaxonomyCycleError,
    UnknownConceptError,
)
from repro.ontology.concepts import Concept, normalize_term, term_key

__all__ = ["Taxonomy"]


class Taxonomy:
    """A single domain's concept hierarchy.

    All term arguments accept any spelling variant; results are reported
    in canonical display form.  The structure is append-only (concepts
    and edges can be added, not removed) which keeps derived caches in
    the semantic stages simple to invalidate: they key on
    :attr:`version`, bumped on every mutation.
    """

    def __init__(self, domain: str = "") -> None:
        self.domain = domain
        self._concepts: dict[str, Concept] = {}
        self._parents: dict[str, set[str]] = {}
        self._children: dict[str, set[str]] = {}
        self.version = 0

    # -- construction ----------------------------------------------------------

    def add_concept(self, term: str, description: str = "") -> Concept:
        """Register a concept; re-registering the same key is a no-op and
        returns the existing node (first spelling wins)."""
        key = term_key(term)
        existing = self._concepts.get(key)
        if existing is not None:
            return existing
        concept = Concept(normalize_term(term), key, self.domain, description)
        self._concepts[key] = concept
        self._parents[key] = set()
        self._children[key] = set()
        self.version += 1
        return concept

    def add_isa(self, specialized: str, generalized: str) -> None:
        """Add an is-a edge: *specialized* is a kind of *generalized*.

        Both concepts are auto-registered.  Raises
        :class:`~repro.errors.TaxonomyCycleError` if the edge would make
        the hierarchy cyclic, and
        :class:`~repro.errors.DuplicateConceptError` for self-loops.
        """
        child = self.add_concept(specialized)
        parent = self.add_concept(generalized)
        if child.key == parent.key:
            raise DuplicateConceptError(f"concept {child.term!r} cannot be its own generalization")
        if parent.key in self._parents[child.key]:
            return
        if self._reaches(parent.key, child.key):
            raise TaxonomyCycleError(f"edge {child.term!r} -> {parent.term!r} would create a cycle")
        self._parents[child.key].add(parent.key)
        self._children[parent.key].add(child.key)
        self.version += 1

    def add_chain(self, *terms: str) -> None:
        """Convenience: ``add_chain("sedan", "car", "vehicle")`` declares
        each term a specialization of the next."""
        for specialized, generalized in zip(terms, terms[1:]):
            self.add_isa(specialized, generalized)

    def _reaches(self, start_key: str, target_key: str) -> bool:
        """Whether *target* is reachable walking upward from *start*."""
        if start_key == target_key:
            return True
        stack, seen = [start_key], {start_key}
        while stack:
            node = stack.pop()
            for parent in self._parents.get(node, ()):
                if parent == target_key:
                    return True
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return False

    # -- lookup ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._concepts)

    def __contains__(self, term: str) -> bool:
        try:
            return term_key(term) in self._concepts
        except Exception:
            return False

    def __iter__(self) -> Iterator[Concept]:
        return iter(self._concepts.values())

    def concept(self, term: str) -> Concept:
        try:
            return self._concepts[term_key(term)]
        except KeyError:
            raise UnknownConceptError(
                f"term {term!r} is not in the {self.domain or 'anonymous'} taxonomy"
            ) from None

    def canonical(self, term: str) -> str:
        """Canonical display spelling of *term*."""
        return self.concept(term).term

    def terms(self) -> tuple[str, ...]:
        return tuple(c.term for c in self._concepts.values())

    def parents(self, term: str) -> tuple[str, ...]:
        """Immediate generalizations, canonical spelling."""
        node = self.concept(term)
        return tuple(sorted(self._concepts[k].term for k in self._parents[node.key]))

    def children(self, term: str) -> tuple[str, ...]:
        """Immediate specializations, canonical spelling."""
        node = self.concept(term)
        return tuple(sorted(self._concepts[k].term for k in self._children[node.key]))

    def roots(self) -> tuple[str, ...]:
        """Concepts without generalizations (hierarchy tops)."""
        return tuple(sorted(c.term for k, c in self._concepts.items() if not self._parents[k]))

    def leaves(self) -> tuple[str, ...]:
        """Concepts without specializations."""
        return tuple(sorted(c.term for k, c in self._concepts.items() if not self._children[k]))

    # -- traversal -------------------------------------------------------------------

    def _walk(
        self, term: str, edges: dict[str, set[str]], max_distance: int | None
    ) -> dict[str, int]:
        start = self.concept(term)
        distances: dict[str, int] = {}
        queue: deque[tuple[str, int]] = deque([(start.key, 0)])
        seen = {start.key: 0}
        while queue:
            key, dist = queue.popleft()
            if max_distance is not None and dist >= max_distance:
                continue
            for nxt in edges.get(key, ()):
                if nxt not in seen or seen[nxt] > dist + 1:
                    seen[nxt] = dist + 1
                    distances[self._concepts[nxt].term] = dist + 1
                    queue.append((nxt, dist + 1))
        return distances

    def ancestors(self, term: str, max_distance: int | None = None) -> dict[str, int]:
        """All generalizations with their minimum upward hop distance.

        ``max_distance`` bounds the walk (the tolerance knob); the term
        itself is not included.
        """
        return self._walk(term, self._parents, max_distance)

    def descendants(self, term: str, max_distance: int | None = None) -> dict[str, int]:
        """All specializations with minimum downward hop distance."""
        return self._walk(term, self._children, max_distance)

    def is_generalization_of(self, general: str, specific: str) -> bool:
        """Paper rule R1's test: is *general* an ancestor of *specific*?"""
        try:
            g, s = self.concept(general), self.concept(specific)
        except UnknownConceptError:
            return False
        return self._reaches(s.key, g.key) and g.key != s.key

    def generalization_distance(self, specific: str, general: str) -> int | None:
        """Minimum upward hops from *specific* to *general*; ``None`` if
        *general* is not an ancestor.  Distance 0 means the same concept."""
        s = self.concept(specific)
        g = self.concept(general)
        if s.key == g.key:
            return 0
        return self.ancestors(specific).get(g.term)

    def depth(self) -> int:
        """Length of the longest is-a chain in the hierarchy."""
        memo: dict[str, int] = {}

        def height(key: str) -> int:
            if key in memo:
                return memo[key]
            memo[key] = 0  # cycle guard (structure is acyclic by construction)
            parents = self._parents[key]
            result = 0 if not parents else 1 + max(height(p) for p in parents)
            memo[key] = result
            return result

        return max((height(k) for k in self._concepts), default=0)

    def lowest_common_ancestor(self, a: str, b: str) -> str | None:
        """A nearest common generalization of *a* and *b* (canonical
        spelling), or ``None`` when the two share no ancestor.  Ties on
        combined distance break alphabetically for determinism."""
        up_a = self.ancestors(a)
        up_a[self.canonical(a)] = 0
        up_b = self.ancestors(b)
        up_b[self.canonical(b)] = 0
        common = set(up_a) & set(up_b)
        if not common:
            return None
        return min(common, key=lambda t: (up_a[t] + up_b[t], t))

    # -- maintenance ----------------------------------------------------------------

    def merge(self, other: "Taxonomy") -> None:
        """Union another taxonomy's concepts and edges into this one."""
        for concept in other:
            self.add_concept(concept.term, concept.description)
        for concept in other:
            for parent in other.parents(concept.term):
                self.add_isa(concept.term, parent)

    def validate(self) -> list[str]:
        """Structural diagnostics (empty = healthy).  The invariants are
        enforced at construction; this re-checks them for tests."""
        problems: list[str] = []
        for key, parents in self._parents.items():
            for parent in parents:
                if parent not in self._concepts:
                    problems.append(f"dangling parent {parent!r} of {key!r}")
                if key not in self._children.get(parent, set()):
                    problems.append(f"asymmetric edge {key!r} -> {parent!r}")
        # cycle check via DFS coloring
        WHITE, GRAY, BLACK = 0, 1, 2
        color = dict.fromkeys(self._concepts, WHITE)

        def dfs(node: str) -> bool:
            color[node] = GRAY
            for parent in self._parents[node]:
                if color[parent] == GRAY:
                    return False
                if color[parent] == WHITE and not dfs(parent):
                    return False
            color[node] = BLACK
            return True

        for node in self._concepts:
            if color[node] == WHITE and not dfs(node):
                problems.append(f"cycle reachable from {node!r}")
                break
        return problems

    def stats(self) -> dict[str, int]:
        """Size metrics used by the taxonomy-shape ablation (A3)."""
        edge_count = sum(len(p) for p in self._parents.values())
        return {
            "concepts": len(self._concepts),
            "edges": edge_count,
            "roots": len(self.roots()),
            "leaves": len(self.leaves()),
            "depth": self.depth(),
        }

    @classmethod
    def from_chains(cls, domain: str, chains: Iterable[Iterable[str]]) -> "Taxonomy":
        """Build from specialization chains, most specific first."""
        taxonomy = cls(domain)
        for chain in chains:
            taxonomy.add_chain(*chain)
        return taxonomy

"""Synonym store: WordNet-style synsets with root election.

The paper's first semantic stage "involves translating all event and
subscription attributes with different names but with the same meaning,
to a 'root' attribute" (§3.1).  A :class:`Thesaurus` holds disjoint
synonym groups (synsets) and elects one member of each group as the
root; lookup is a hash probe, which is the constant-time structure the
paper's performance claim (C1 in DESIGN.md) rests on.

The same structure serves attribute synonyms (stage 1 proper) and value
synonyms (an extension: distance-0 equivalences fed to the hierarchy
stage), differing only in the normalization applied by the caller.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import DuplicateConceptError
from repro.ontology.concepts import normalize_term, term_key

__all__ = ["Thesaurus"]


class _Group:
    """One synset: member keys, display spellings, and the elected root."""

    __slots__ = ("members", "display", "root_key", "root_explicit")

    def __init__(self) -> None:
        self.members: set[str] = set()
        self.display: dict[str, str] = {}
        self.root_key: str | None = None
        self.root_explicit = False


class Thesaurus:
    """Disjoint synonym groups with canonical-root election.

    Roots are chosen as follows: an explicitly designated root always
    wins; otherwise the first term of the earliest ``add_synonyms`` call
    serves.  Merging two groups that both carry *explicit* roots is an
    error (the knowledge engineer must resolve the conflict) — merging
    an explicit-root group with an implicit one keeps the explicit root.
    """

    def __init__(self) -> None:
        self._group_of: dict[str, _Group] = {}
        self.version = 0

    # -- construction ---------------------------------------------------------

    def add_synonyms(self, terms: Iterable[str], *, root: str | None = None) -> str:
        """Declare *terms* (and optionally *root*) mutually synonymous.

        Returns the canonical root spelling of the resulting group.
        Groups touched by any of the terms are merged (synonymy is
        treated as transitive).
        """
        spellings = [normalize_term(t) for t in terms]
        if root is not None:
            root_spelling = normalize_term(root)
            spellings.insert(0, root_spelling)
        if not spellings:
            raise DuplicateConceptError("add_synonyms requires at least one term")

        groups: list[_Group] = []
        for spelling in spellings:
            group = self._group_of.get(term_key(spelling))
            if group is not None and group not in groups:
                groups.append(group)

        if groups:
            merged = groups[0]
            for other in groups[1:]:
                self._merge(merged, other)
        else:
            merged = _Group()

        for spelling in spellings:
            key = term_key(spelling)
            if key not in merged.members:
                merged.members.add(key)
                merged.display[key] = spelling
            self._group_of[key] = merged

        if root is not None:
            root_key = term_key(root)
            if merged.root_explicit and merged.root_key != root_key:
                raise DuplicateConceptError(
                    f"synonym group already has explicit root "
                    f"{merged.display[merged.root_key]!r}; cannot re-root to {root!r}"
                )
            merged.root_key = root_key
            merged.root_explicit = True
        elif merged.root_key is None:
            merged.root_key = term_key(spellings[0])

        self.version += 1
        return merged.display[merged.root_key]

    def _merge(self, into: _Group, other: _Group) -> None:
        if into.root_explicit and other.root_explicit and into.root_key != other.root_key:
            raise DuplicateConceptError(
                "cannot merge synonym groups with conflicting explicit roots "
                f"{into.display[into.root_key]!r} and {other.display[other.root_key]!r}"
            )
        if other.root_explicit and not into.root_explicit:
            into.root_key = other.root_key
            into.root_explicit = True
        into.members.update(other.members)
        into.display.update(other.display)
        for key in other.members:
            self._group_of[key] = into

    # -- lookup ------------------------------------------------------------------

    def __contains__(self, term: str) -> bool:
        try:
            return term_key(term) in self._group_of
        except Exception:
            return False

    def __len__(self) -> int:
        """Number of terms known (not groups)."""
        return len(self._group_of)

    def root_of(self, term: str) -> str | None:
        """Canonical root spelling for *term*, or ``None`` if unknown.

        A term maps to itself when it is the root of its group, making
        the rewrite idempotent: ``root_of(root_of(t)) == root_of(t)``.
        """
        group = self._group_of.get(term_key(term))
        if group is None or group.root_key is None:
            return None
        return group.display[group.root_key]

    def synonyms_of(self, term: str) -> frozenset[str]:
        """All spellings in *term*'s group, itself included; empty set
        for unknown terms."""
        group = self._group_of.get(term_key(term))
        if group is None:
            return frozenset()
        return frozenset(group.display.values())

    def are_synonyms(self, a: str, b: str) -> bool:
        ga = self._group_of.get(term_key(a))
        gb = self._group_of.get(term_key(b))
        return ga is not None and ga is gb

    def groups(self) -> Iterator[frozenset[str]]:
        """Iterate distinct synsets (as display-spelling sets)."""
        seen: set[int] = set()
        for group in self._group_of.values():
            if id(group) not in seen:
                seen.add(id(group))
                yield frozenset(group.display.values())

    def group_count(self) -> int:
        return sum(1 for _ in self.groups())

    def stats(self) -> dict[str, int]:
        sizes = [len(g) for g in self.groups()]
        return {
            "terms": len(self._group_of),
            "groups": len(sizes),
            "largest_group": max(sizes, default=0),
        }

"""Interned concept identifiers: the paper's internal-identifier fast path.

S-ToPSS argues (§3) that semantic matching can approach syntactic speed
by substituting "each term with an internal identifier" at subscription
and publication time, so synonym and taxonomy handling become identifier
lookups instead of string work.  :class:`ConceptTable` is that layer: a
knowledge-base snapshot that assigns **dense integer IDs** to every
term (by normalized term key) and every exact display spelling, plus
lazily memoized ancestor/descendant **closure arrays** of ``(id,
depth)`` pairs, so the publish hot path never re-runs a per-event BFS
or re-normalizes a string it has seen before.

Two id spaces, deliberately distinct:

* **term ids** identify concepts up to :func:`~repro.ontology.concepts.
  term_key` normalization ("PhD" and "phd" share one) — the identity
  the hierarchy/synonym stages operate on;
* **spelling ids** identify exact strings ("PhD" and "phd" differ) —
  the identity predicate equality operates on, used by
  :meth:`value_key` for matcher-level interning.  Conflating the two
  would make a subscription on ``"phd"`` match an event carrying
  ``"PhD"``, which the string path correctly rejects.

A table is an immutable snapshot: it records the knowledge-base
``version`` it was built from and :meth:`KnowledgeBase.concept_table
<repro.ontology.knowledge_base.KnowledgeBase.concept_table>` rebuilds
it whenever that version moves, so holders that re-fetch per operation
(the engine does, once per publish) can never observe a stale id space.
Closure arrays are filled lazily on first access — large ontologies
only pay for the terms their traffic actually touches.

One snapshot may be shared by many engine replicas publishing
concurrently (the sharded broker's thread fan-out), so the lazy fills
are guarded by a lock: without it, two threads missing on the same
spelling could intern it twice under *different* dense ids, and a
closure built against the first id would disagree with
:meth:`value_key` returning the second — silently breaking matcher
equality and interest-index probes.  Reads of already-memoized entries
stay lock-free (dict/list access is atomic under the interpreter
lock, and memoized values are immutable tuples).

Values that intern to nothing (free text, numbers, spellings added to
the knowledge base after the snapshot) transparently fall back to the
string path everywhere: :meth:`term_id_of_value` returns ``None`` and
:meth:`value_key` returns the plain
:func:`~repro.model.values.canonical_value_key`.
"""

from __future__ import annotations

import array
import threading
from collections import deque
from typing import TYPE_CHECKING

from repro.errors import SnapshotMismatchError
from repro.model.attributes import normalize_attribute
from repro.model.values import Value, canonical_value_key
from repro.ontology.concepts import term_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (kb imports us)
    from repro.ontology.knowledge_base import KnowledgeBase

__all__ = ["ConceptTable", "SharedClosureSnapshot", "descent_closure"]


def descent_closure(kb: "KnowledgeBase", term: str, bound: int | None) -> dict[str, int]:
    """Every spelling an event may carry to reach *term* within
    *bound* generalization levels, with its minimum total ascent depth
    (``bound=None`` = unbounded).

    This is the downward mirror of the event-side pipeline's fixpoint:
    a breadth-first closure over taxonomy descent composed with
    distance-0 value-synonym hops, across all domains — so a chain that
    climbs through domain A, crosses a synonym spelling, and continues
    in domain B is charged its summed hierarchy distance exactly as the
    event-side engine charges it.

    The single implementation behind both paths: the subscription-side
    string path (``subexpand._descend``) calls it per predicate with
    the live bound; :meth:`ConceptTable.descent` memoizes the unbounded
    closure once per term and serves bounded queries by depth-filtering
    it — equivalent because the recorded depths are minimal, so any
    spelling within the bound is reachable by a path whose prefix
    depths also stay within it.
    """
    taxonomies = [kb.taxonomy(domain) for domain in kb.domains()]
    depths: dict[str, int] = {}
    queue: deque[tuple[str, int]] = deque()
    for spelling in kb.value_equivalents(term):
        depths[spelling] = 0
        queue.append((spelling, 0))
    while queue:
        spelling, depth = queue.popleft()
        if depths.get(spelling, depth) < depth:
            continue  # a cheaper path to this spelling was found later
        remaining = None if bound is None else bound - depth
        if remaining is not None and remaining <= 0:
            continue
        for taxonomy in taxonomies:
            if spelling not in taxonomy:
                continue
            for descendant, distance in taxonomy.descendants(spelling, remaining).items():
                total = depth + distance
                known = depths.get(descendant)
                if known is None or known > total:
                    depths[descendant] = total
                    # this walk already covered the whole same-domain
                    # subtree below `descendant` at minimum distances;
                    # re-enqueue only when the closure can continue
                    # elsewhere — the term also lives in another domain.
                    if any(
                        other is not taxonomy and descendant in other
                        for other in taxonomies
                    ):
                        queue.append((descendant, total))
                for equivalent in kb.value_equivalents(descendant):
                    if equivalent == descendant:
                        continue
                    known = depths.get(equivalent)
                    if known is None or known > total:
                        # a synonym bridge: descent may resume from the
                        # equivalent spelling in any domain that knows it.
                        depths[equivalent] = total
                        queue.append((equivalent, total))
    return depths


class ConceptTable:
    """Dense-id snapshot of one knowledge base version.

    Construction enumerates every known term and spelling (taxonomy
    concepts across all domains, value- and attribute-synonym group
    members) into dense id ranges; the per-term generalization and
    descent closures are computed on demand and memoized for the life
    of the snapshot.
    """

    __slots__ = (
        "_kb",
        "version",
        "_term_display",
        "_tid_by_key",
        "_tid_by_spelling",
        "_spellings",
        "_sid_by_spelling",
        "attribute_roots",
        "_value_terms",
        "_canonical_sid",
        "_up_closure",
        "_down_closure",
        "_attr_form",
        "_fill_lock",
        "_wire_base",
        "_snapshot",
    )

    def __init__(self, kb: "KnowledgeBase") -> None:
        self._kb = kb
        self.version = kb.version
        #: term id -> first-registered display spelling of the term
        self._term_display: list[str] = []
        #: term key -> term id
        self._tid_by_key: dict[str, int] = {}
        #: exact spelling -> term id (fast path skipping term_key())
        self._tid_by_spelling: dict[str, int] = {}
        #: spelling id -> exact spelling
        self._spellings: list[str] = []
        #: exact spelling -> spelling id
        self._sid_by_spelling: dict[str, int] = {}
        #: normalized attribute name -> normalized root attribute (only
        #: synonym-group members; the stage skips identical entries)
        self.attribute_roots: dict[str, str] = {}
        #: term ids known to the *value* substrate (taxonomies and
        #: value-synonym groups).  Attribute-synonym spellings are
        #: interned too (for the stage-1 rewrite), but the string path
        #: never unifies value spellings through attribute synonyms —
        #: descent/subscription expansion must not either.
        self._value_terms: set[int] = set()
        #: term id -> canonical display spelling id (-1 = none), lazy
        self._canonical_sid: dict[int, int] = {}
        #: term id -> ((spelling id, min distance), ...) ancestors, lazy
        self._up_closure: dict[int, tuple[tuple[int, int], ...]] = {}
        #: term id -> ((spelling id, min depth), ...) descent set, lazy
        self._down_closure: dict[int, tuple[tuple[int, int], ...]] = {}
        #: spelling id -> attribute-normalized form (None = does not
        #: normalize; the stage falls back to raising exactly as the
        #: string path would), lazy
        self._attr_form: dict[int, str | None] = {}
        #: guards every lazy fill (interning is append-only and id
        #: assignment must be race-free when shard replicas share the
        #: snapshot); the memoized-hit path never takes it.
        self._fill_lock = threading.Lock()
        self._populate(kb)
        #: spelling ids below this boundary were assigned during
        #: construction, deterministically from knowledge-base content —
        #: two tables built from equal-content KBs agree on all of them.
        #: Ids at or above it were interned lazily (closure fills) in
        #: *this* process and mean nothing elsewhere; the wire codec and
        #: the shared-memory export both refuse to emit them.
        self._wire_base = len(self._spellings)
        #: optional read-only :class:`SharedClosureSnapshot` consulted
        #: on closure-memo misses (worker processes adopt the parent's).
        self._snapshot: SharedClosureSnapshot | None = None

    # -- construction -----------------------------------------------------------

    def _intern_spelling(self, spelling: str) -> int:
        sid = self._sid_by_spelling.get(spelling)
        if sid is None:
            sid = len(self._spellings)
            self._spellings.append(spelling)
            self._sid_by_spelling[spelling] = sid
        return sid

    def _intern_term(self, spelling: str) -> int:
        key = term_key(spelling)
        tid = self._tid_by_key.get(key)
        if tid is None:
            tid = len(self._term_display)
            self._term_display.append(spelling)
            self._tid_by_key[key] = tid
        self._tid_by_spelling.setdefault(spelling, tid)
        self._intern_spelling(spelling)
        return tid

    def _populate(self, kb: "KnowledgeBase") -> None:
        for domain in kb.domains():
            for concept in kb.taxonomy(domain):
                self._value_terms.add(self._intern_term(concept.term))
        for group in kb.value_synonym_groups():
            for spelling in sorted(group):
                self._value_terms.add(self._intern_term(spelling))
        for group in kb.attribute_synonym_groups():
            spellings = sorted(group)
            root = kb.root_attribute(spellings[0])
            for spelling in spellings:
                self._intern_term(spelling)
                self.attribute_roots[normalize_attribute(spelling)] = root

    # -- identity lookups --------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct terms interned."""
        return len(self._term_display)

    @property
    def spelling_count(self) -> int:
        return len(self._spellings)

    def term_id_of_value(self, value: str) -> int | None:
        """The term id for an event/subscription value, ``None`` for
        un-interned values (the string-path fallback).  Exact known
        spellings resolve in one dict probe; variant spellings pay one
        :func:`~repro.ontology.concepts.term_key` normalization (which
        raises on malformed terms exactly as the string path does)."""
        tid = self._tid_by_spelling.get(value)
        if tid is not None:
            return tid
        return self._tid_by_key.get(term_key(value))

    def term_id_of_key(self, key: str) -> int | None:
        return self._tid_by_key.get(key)

    def spelling(self, sid: int) -> str:
        return self._spellings[sid]

    def term_display(self, tid: int) -> str:
        return self._term_display[tid]

    # -- matcher-level value interning --------------------------------------------

    def value_key(self, value: Value):
        """Matching identity of *value*: the dense spelling id for
        exactly-known string spellings, the plain
        :func:`~repro.model.values.canonical_value_key` for everything
        else.  Int ids and the tuple-shaped canonical keys can never
        collide, so indexes may mix both key forms in one table as long
        as every probe goes through the same function."""
        if type(value) is str:
            sid = self._sid_by_spelling.get(value)
            if sid is not None:
                return sid
        return canonical_value_key(value)

    def wire_sid(self, value: str) -> int | None:
        """The spelling id of *value* if it is safe to send to another
        process as a bare int, else ``None``.

        Only construction-time ids qualify: they are assigned by
        :meth:`_populate`'s deterministic enumeration of knowledge-base
        content, so any table built from an equal-content KB (a forked
        or respawned worker replica at the same ``version``) decodes
        them to the identical spelling.  Lazily interned ids are
        process-local and never cross the wire."""
        sid = self._sid_by_spelling.get(value)
        if sid is not None and sid < self._wire_base:
            return sid
        return None

    # -- closure arrays -----------------------------------------------------------

    def canonical_spelling(self, tid: int) -> str | None:
        """Canonical display spelling of a term (value-synonym root,
        else taxonomy spelling) — the interned form of
        :meth:`KnowledgeBase.canonical_term`."""
        sid = self._canonical_sid.get(tid)
        if sid is None:
            with self._fill_lock:
                sid = self._canonical_sid.get(tid)
                if sid is None:
                    canonical = self._kb.canonical_term(self._term_display[tid])
                    sid = -1 if canonical is None else self._intern_spelling(canonical)
                    self._canonical_sid[tid] = sid
        return None if sid < 0 else self._spellings[sid]

    def ancestors(self, tid: int) -> tuple[tuple[int, int], ...]:
        """``(spelling id, min distance)`` pairs for every
        generalization of the term, in the knowledge base's enumeration
        order — the full (unbounded) closure; budget-bounded callers
        filter by distance, which is equivalent because distances are
        minimal."""
        closure = self._up_closure.get(tid)
        if closure is None:
            with self._fill_lock:
                closure = self._up_closure.get(tid)
                if closure is None:
                    if self._snapshot is not None:
                        closure = self._snapshot.up_closure(tid)
                    if closure is None:
                        closure = tuple(
                            (self._intern_spelling(general), distance)
                            for general, distance in self._kb.generalizations(
                                self._term_display[tid]
                            ).items()
                        )
                    self._up_closure[tid] = closure
        return closure

    def attribute_form(self, sid: int) -> str | None:
        """The spelling as a normalized attribute name (for attribute
        generalization), ``None`` when it does not normalize."""
        form = self._attr_form.get(sid, False)
        if form is False:
            with self._fill_lock:
                form = self._attr_form.get(sid, False)
                if form is False:
                    try:
                        form = normalize_attribute(self._spellings[sid].replace(" ", "_"))
                    except Exception:
                        form = None
                    self._attr_form[sid] = form
        return form

    def descent(self, tid: int) -> tuple[tuple[int, int], ...]:
        """``(spelling id, min total depth)`` pairs for every spelling
        an event may carry to reach the term — the unbounded
        :func:`descent_closure`, memoized once per term.  Bounded
        queries filter by depth."""
        closure = self._down_closure.get(tid)
        if closure is None:
            with self._fill_lock:
                closure = self._down_closure.get(tid)
                if closure is None:
                    if self._snapshot is not None:
                        closure = self._snapshot.down_closure(tid)
                    if closure is None:
                        depths = descent_closure(self._kb, self._term_display[tid], None)
                        closure = tuple(
                            (self._intern_spelling(spelling), depth)
                            for spelling, depth in depths.items()
                        )
                    self._down_closure[tid] = closure
        return closure

    def descent_map(self, term: str, bound: int | None) -> dict[str, int]:
        """``{spelling: min depth}`` within *bound* for *term* — the
        interned equivalent of the subscription-side ``_descend`` BFS.
        Unknown terms report themselves at depth 0 (matching the BFS,
        whose seed set always contains the literal term).  Terms known
        *only* as attribute-synonym spellings count as unknown here:
        the string path's seeds (``value_equivalents``) never consult
        attribute synonyms, so unifying a spelling variant through one
        would rewrite predicates the reference path leaves alone."""
        tid = self.term_id_of_value(term)
        if tid is None or tid not in self._value_terms:
            return {term: 0}
        spellings = self._spellings
        result = {
            spellings[sid]: depth
            for sid, depth in self.descent(tid)
            if bound is None or depth <= bound
        }
        # the BFS seeds from value_equivalents(term) ∪ {term}: the exact
        # queried spelling is always admissible at depth 0.
        result.setdefault(term, 0)
        return result

    # -- shared-memory snapshot protocol ------------------------------------------

    def warm_closures(self, *, up: bool = True, down: bool = False) -> int:
        """Eagerly fill the memoized closures of every value term,
        returning how many closures were computed.  Used before
        :meth:`export_shared` so a snapshot carries the whole id space
        instead of whatever traffic happened to touch."""
        filled = 0
        for tid in sorted(self._value_terms):
            if up and tid not in self._up_closure:
                self.ancestors(tid)
                filled += 1
            if down and tid not in self._down_closure:
                self.descent(tid)
                filled += 1
        return filled

    def export_shared(self) -> "SharedClosureSnapshot":
        """Export the currently memoized closure arrays into a POSIX
        shared-memory segment (see :class:`SharedClosureSnapshot`).
        Only closures whose spelling ids are all below the wire
        boundary are exported — process-local lazy ids would decode to
        the wrong spelling elsewhere.  The caller owns the returned
        snapshot and must :meth:`~SharedClosureSnapshot.close` and
        :meth:`~SharedClosureSnapshot.unlink` it."""
        return SharedClosureSnapshot._export(self)

    def adopt_snapshot(self, snapshot: "SharedClosureSnapshot") -> None:
        """Serve closure-memo misses from *snapshot* before computing.

        Raises :class:`~repro.errors.SnapshotMismatchError` unless the
        snapshot was exported from a table with the same knowledge-base
        version and identical construction-time id space — the
        precondition for its dense ids to mean the same spellings
        here."""
        if (
            snapshot.version != self.version
            or snapshot.terms != len(self._term_display)
            or snapshot.wire_spellings != self._wire_base
        ):
            raise SnapshotMismatchError(
                f"snapshot (version={snapshot.version}, terms={snapshot.terms}, "
                f"wire_spellings={snapshot.wire_spellings}) does not match table "
                f"(version={self.version}, terms={len(self._term_display)}, "
                f"wire_spellings={self._wire_base})"
            )
        self._snapshot = snapshot

    # -- reporting ----------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "version": self.version,
            "terms": len(self._term_display),
            "spellings": len(self._spellings),
            "attribute_roots": len(self.attribute_roots),
            "up_closures": len(self._up_closure),
            "down_closures": len(self._down_closure),
        }


class SharedClosureSnapshot:
    """Read-only CSR view of a :class:`ConceptTable`'s closure arrays in
    a :mod:`multiprocessing.shared_memory` segment.

    The exporting process copies its memoized ``(spelling id, depth)``
    closure tuples into one segment as three parallel sections per
    direction — an ``int64`` indptr row per term, a flat ``int32``
    ``(sid, depth)`` pair array, and a ``uint8`` filled bitmap (a term
    with an *empty* closure is distinct from one never memoized).
    Worker processes :meth:`attach` by the picklable :meth:`descriptor`
    and read the arrays zero-copy through ``memoryview.cast`` — no numpy
    required, no per-worker re-derivation, no per-worker copy.

    Validity is anchored to the knowledge-base ``version`` and the
    construction-time id-space size recorded in the descriptor;
    :meth:`ConceptTable.adopt_snapshot` refuses anything else.  The
    exporter is the owner: it must call :meth:`unlink` (destroy the
    segment) as well as :meth:`close` (detach); attachers only
    :meth:`close`.
    """

    _VIEWS = (
        "_up_indptr",
        "_down_indptr",
        "_up_data",
        "_down_data",
        "_up_filled",
        "_down_filled",
    )

    __slots__ = ("version", "terms", "wire_spellings", "_descriptor", "_shm", "_owner", *_VIEWS)

    def __init__(self, shm, descriptor: dict, *, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._descriptor = descriptor
        self.version = descriptor["version"]
        self.terms = descriptor["terms"]
        self.wire_spellings = descriptor["wire_spellings"]
        offsets = descriptor["offsets"]
        buf = shm.buf
        terms = self.terms
        indptr_bytes = 8 * (terms + 1)
        self._up_indptr = buf[
            offsets["up_indptr"] : offsets["up_indptr"] + indptr_bytes
        ].cast("q")
        self._down_indptr = buf[
            offsets["down_indptr"] : offsets["down_indptr"] + indptr_bytes
        ].cast("q")
        self._up_data = buf[
            offsets["up_data"] : offsets["up_data"] + 8 * descriptor["up_pairs"]
        ].cast("i")
        self._down_data = buf[
            offsets["down_data"] : offsets["down_data"] + 8 * descriptor["down_pairs"]
        ].cast("i")
        self._up_filled = buf[offsets["up_filled"] : offsets["up_filled"] + terms]
        self._down_filled = buf[offsets["down_filled"] : offsets["down_filled"] + terms]

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def _export(cls, table: ConceptTable) -> "SharedClosureSnapshot":
        from multiprocessing import shared_memory

        with table._fill_lock:
            up = dict(table._up_closure)
            down = dict(table._down_closure)
        terms = len(table._term_display)
        base = table._wire_base

        def build(closures):
            indptr = array.array("q", bytes(8 * (terms + 1)))
            data = array.array("i")
            filled = bytearray(terms)
            pairs = 0
            for tid in range(terms):
                closure = closures.get(tid)
                if closure is not None and all(sid < base for sid, _ in closure):
                    filled[tid] = 1
                    for sid, depth in closure:
                        data.append(sid)
                        data.append(depth)
                    pairs += len(closure)
                indptr[tid + 1] = pairs
            return indptr, data, filled, pairs

        up_indptr, up_data, up_filled, up_pairs = build(up)
        down_indptr, down_data, down_filled, down_pairs = build(down)

        sections = (
            ("up_indptr", up_indptr.tobytes()),
            ("down_indptr", down_indptr.tobytes()),
            ("up_data", up_data.tobytes()),
            ("down_data", down_data.tobytes()),
            ("up_filled", bytes(up_filled)),
            ("down_filled", bytes(down_filled)),
        )
        offsets: dict[str, int] = {}
        cursor = 0
        for name, raw in sections:
            offsets[name] = cursor
            cursor += len(raw)
        shm = shared_memory.SharedMemory(create=True, size=max(cursor, 1))
        for name, raw in sections:
            if raw:
                shm.buf[offsets[name] : offsets[name] + len(raw)] = raw
        descriptor = {
            "name": shm.name,
            "version": table.version,
            "terms": terms,
            "wire_spellings": base,
            "up_pairs": up_pairs,
            "down_pairs": down_pairs,
            "offsets": offsets,
        }
        return cls(shm, descriptor, owner=True)

    def descriptor(self) -> dict:
        """Picklable handle another process passes to :meth:`attach`."""
        return dict(self._descriptor)

    @classmethod
    def attach(cls, descriptor: dict) -> "SharedClosureSnapshot":
        """Map an existing segment read-only in this process.  Raises
        ``FileNotFoundError`` if the owner already unlinked it."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=descriptor["name"], create=False)
        try:  # pragma: no cover - tracker internals vary across versions
            # the owner's resource tracker already accounts for the
            # segment; double-registration makes the attacher's tracker
            # unlink it on exit and spam KeyError warnings.
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return cls(shm, descriptor, owner=False)

    def close(self) -> None:
        """Release the memory views and detach from the segment (the
        segment itself survives until the owner unlinks it)."""
        for name in self._VIEWS:
            view = getattr(self, name, None)
            if view is not None:
                view.release()
                setattr(self, name, None)
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent)."""
        if not self._owner:
            return
        self._owner = False
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=self._descriptor["name"], create=False)
        except FileNotFoundError:
            return
        segment.close()
        segment.unlink()

    # -- lookups -----------------------------------------------------------------

    def up_closure(self, tid: int) -> tuple[tuple[int, int], ...] | None:
        """The exported ancestors closure of *tid*, ``None`` when it was
        not memoized at export time."""
        return self._closure(tid, self._up_filled, self._up_indptr, self._up_data)

    def down_closure(self, tid: int) -> tuple[tuple[int, int], ...] | None:
        """The exported descent closure of *tid*, ``None`` when it was
        not memoized at export time."""
        return self._closure(tid, self._down_filled, self._down_indptr, self._down_data)

    def _closure(self, tid, filled, indptr, data):
        if tid < 0 or tid >= self.terms or not filled[tid]:
            return None
        start, stop = indptr[tid], indptr[tid + 1]
        return tuple((data[2 * i], data[2 * i + 1]) for i in range(start, stop))

    def stats(self) -> dict[str, int]:
        return {
            "version": self.version,
            "terms": self.terms,
            "up_pairs": self._descriptor["up_pairs"],
            "down_pairs": self._descriptor["down_pairs"],
            "bytes": self._shm.size if self._shm is not None else 0,
        }

"""Concept and term primitives for the knowledge substrate.

A *concept* is a node of a domain's concept hierarchy — "all the terms
within a specific domain, which includes both attributes and values"
(paper §3.1).  Concepts are identified by a normalized *term key* so that
spelling variants ("PhD", "phd", "  PHD ") resolve to one node, while the
first-registered spelling is kept as the canonical display form emitted
into derived events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidValueError

__all__ = ["Concept", "term_key", "normalize_term"]


def normalize_term(term: str) -> str:
    """Collapse whitespace and trim; preserves case (display form)."""
    if not isinstance(term, str):
        raise InvalidValueError(f"concept terms must be str, got {type(term).__name__}")
    collapsed = " ".join(term.split())
    if not collapsed:
        raise InvalidValueError("empty concept term")
    return collapsed


def term_key(term: str) -> str:
    """Case-insensitive lookup key for a term.

    Underscores and whitespace are interchangeable, so the attribute
    ``graduation_year`` and the phrase "Graduation Year" share a key —
    concept hierarchies cover attributes and values alike.
    """
    return normalize_term(term).replace("_", " ").casefold()


@dataclass(frozen=True)
class Concept:
    """A node in a domain taxonomy.

    Attributes
    ----------
    term: canonical display spelling (first registration wins).
    key: normalized lookup key (see :func:`term_key`).
    domain: owning domain name (``"jobs"``, ``"vehicles"`` …).
    description: optional human-readable gloss.
    """

    term: str
    key: str = field(compare=True)
    domain: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "term", normalize_term(self.term))
        object.__setattr__(self, "key", term_key(self.term) if not self.key else self.key)

    @classmethod
    def of(cls, term: str, domain: str = "", description: str = "") -> "Concept":
        normalized = normalize_term(term)
        return cls(normalized, term_key(normalized), domain, description)

    def __str__(self) -> str:
        return self.term

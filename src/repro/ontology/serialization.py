"""Knowledge-base persistence: JSON save/load.

DAML+OIL (:mod:`repro.ontology.daml`) is the *interchange* format the
paper targets; this module is the *operational* format — a complete,
versioned JSON snapshot of a knowledge base (domains, synonym groups,
and declarative mapping rules) so a deployment can persist and reload
its knowledge without re-running builder code.

Function-backed mapping rules (``MappingRule.function``) cannot be
serialized — they carry arbitrary Python callables.  ``save`` rejects
them by default; pass ``skip_unserializable=True`` to persist everything
else and report what was dropped.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import OntologyError
from repro.model.predicates import Operator, Predicate, Range
from repro.model.values import Period, Value
from repro.ontology.knowledge_base import KnowledgeBase
from repro.ontology.mappingdefs import Expr, MappingRule, OutputMode, Requirement

__all__ = ["kb_to_dict", "kb_from_dict", "save_kb", "load_kb"]

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# value encoding (JSON cannot hold Periods or distinguish 4 from 4.0 intent)
# ---------------------------------------------------------------------------

def _encode_value(value: Value) -> object:
    if isinstance(value, Period):
        return {"__period__": [value.start, value.end]}
    return value


def _decode_value(raw: object) -> Value:
    if isinstance(raw, dict) and "__period__" in raw:
        start, end = raw["__period__"]
        return Period(start, end)
    return raw  # type: ignore[return-value]


def _encode_predicate(predicate: Predicate) -> dict:
    data: dict = {"attribute": predicate.attribute, "operator": predicate.operator.name}
    if predicate.operator is Operator.RANGE:
        rng = predicate.operand
        data["operand"] = {
            "low": _encode_value(rng.low),  # type: ignore[union-attr]
            "high": _encode_value(rng.high),  # type: ignore[union-attr]
        }
    elif predicate.operator is Operator.IN:
        data["operand"] = sorted(
            (_encode_value(v) for v in predicate.operand),  # type: ignore[union-attr]
            key=repr,
        )
    elif predicate.operator is not Operator.EXISTS:
        data["operand"] = _encode_value(predicate.operand)  # type: ignore[arg-type]
    return data


def _decode_predicate(data: dict) -> Predicate:
    operator = Operator[data["operator"]]
    if operator is Operator.EXISTS:
        return Predicate.exists(data["attribute"])
    if operator is Operator.RANGE:
        rng = data["operand"]
        return Predicate(
            data["attribute"],
            operator,
            Range(_decode_value(rng["low"]), _decode_value(rng["high"])),
        )
    if operator is Operator.IN:
        return Predicate(
            data["attribute"],
            operator,
            frozenset(_decode_value(v) for v in data["operand"]),
        )
    return Predicate(data["attribute"], operator, _decode_value(data["operand"]))


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------

def _encode_rule(rule: MappingRule) -> dict | None:
    """Encode a declarative rule; ``None`` for function-backed rules."""
    if rule.fn is not None:
        return None
    outputs = []
    for attribute, producer in rule.outputs:
        if isinstance(producer, Expr):
            outputs.append({"attribute": attribute, "expr": producer.text})
        elif callable(producer):
            return None  # callable producer: not serializable
        else:
            outputs.append({"attribute": attribute, "const": _encode_value(producer)})
    return {
        "name": rule.name,
        "domain": rule.domain,
        "description": rule.description,
        "mode": rule.mode.value,
        "requires": [
            {
                "attribute": req.attribute,
                "predicate": _encode_predicate(req.predicate) if req.predicate else None,
            }
            for req in rule.requires
        ],
        "outputs": outputs,
    }


def _decode_rule(data: dict) -> MappingRule:
    requires = tuple(
        Requirement(
            entry["attribute"],
            _decode_predicate(entry["predicate"]) if entry.get("predicate") else None,
        )
        for entry in data["requires"]
    )
    outputs = []
    for entry in data["outputs"]:
        if "expr" in entry:
            outputs.append((entry["attribute"], Expr.parse(entry["expr"])))
        else:
            outputs.append((entry["attribute"], _decode_value(entry["const"])))
    return MappingRule(
        name=data["name"],
        requires=requires,
        outputs=tuple(outputs),
        mode=OutputMode(data["mode"]),
        domain=data.get("domain", ""),
        description=data.get("description", ""),
    )


# ---------------------------------------------------------------------------
# knowledge base
# ---------------------------------------------------------------------------

def kb_to_dict(kb: KnowledgeBase, *, skip_unserializable: bool = False) -> dict:
    """Snapshot *kb* as a JSON-compatible dict.

    Raises :class:`~repro.errors.OntologyError` when a function-backed
    rule is present and ``skip_unserializable`` is false.
    """
    domains = {}
    for domain in kb.domains():
        taxonomy = kb.taxonomy(domain)
        domains[domain] = {
            "concepts": [
                {"term": concept.term, "description": concept.description}
                for concept in taxonomy
            ],
            "edges": [
                [concept.term, parent]
                for concept in taxonomy
                for parent in taxonomy.parents(concept.term)
            ],
        }
    rules = []
    dropped = []
    for rule in kb.rules():
        encoded = _encode_rule(rule)
        if encoded is None:
            dropped.append(rule.name)
        else:
            rules.append(encoded)
    if dropped and not skip_unserializable:
        raise OntologyError("cannot serialize function-backed mapping rules: " + ", ".join(dropped))
    return {
        "format_version": FORMAT_VERSION,
        "name": kb.name,
        "attribute_synonyms": [
            {"root": kb.root_attribute(next(iter(group))), "terms": sorted(group)}
            for group in kb.attribute_synonym_groups()
        ],
        "value_synonyms": [
            {"root": kb.value_root(next(iter(group))), "terms": sorted(group)}
            for group in kb.value_synonym_groups()
        ],
        "domains": domains,
        "rules": rules,
        "dropped_rules": dropped,
    }


def kb_from_dict(data: dict) -> KnowledgeBase:
    """Rebuild a knowledge base from :func:`kb_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise OntologyError(f"unsupported knowledge-base format version {version!r}")
    kb = KnowledgeBase(data.get("name", "kb"))
    for group in data.get("attribute_synonyms", ()):
        kb.add_attribute_synonyms(group["terms"], root=group["root"])
    for group in data.get("value_synonyms", ()):
        kb.add_value_synonyms(group["terms"], root=group["root"])
    for domain, payload in data.get("domains", {}).items():
        taxonomy = kb.add_domain(domain)
        for concept in payload.get("concepts", ()):
            taxonomy.add_concept(concept["term"], concept.get("description", ""))
        for child, parent in payload.get("edges", ()):
            taxonomy.add_isa(child, parent)
    for rule_data in data.get("rules", ()):
        kb.add_rule(_decode_rule(rule_data))
    return kb


def save_kb(kb: KnowledgeBase, path: str | Path, *, skip_unserializable: bool = False) -> None:
    """Write *kb* to *path* as JSON."""
    payload = kb_to_dict(kb, skip_unserializable=skip_unserializable)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")


def load_kb(path: str | Path) -> KnowledgeBase:
    """Read a knowledge base previously written by :func:`save_kb`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise OntologyError(f"malformed knowledge-base file {path}: {exc}") from exc
    return kb_from_dict(data)

"""Knowledge substrate: taxonomies, thesauri, mapping rules, and the
knowledge-base facade the semantic stages query.

The built-in domain ontologies live in :mod:`repro.ontology.domains`;
DAML+OIL import/export (the paper's future-work item) in
:mod:`repro.ontology.daml`.
"""

from repro.ontology.builders import DomainBuilder, KnowledgeBaseBuilder
from repro.ontology.concept_table import ConceptTable
from repro.ontology.concepts import Concept, normalize_term, term_key
from repro.ontology.daml import DamlOntology, export_daml, import_daml, parse_daml
from repro.ontology.knowledge_base import KnowledgeBase
from repro.ontology.mappingdefs import (
    Expr,
    MappingContext,
    MappingRule,
    OutputMode,
    Requirement,
)
from repro.ontology.serialization import kb_from_dict, kb_to_dict, load_kb, save_kb
from repro.ontology.taxonomy import Taxonomy
from repro.ontology.thesaurus import Thesaurus

__all__ = [
    "kb_to_dict",
    "kb_from_dict",
    "save_kb",
    "load_kb",
    "Concept",
    "ConceptTable",
    "normalize_term",
    "term_key",
    "Taxonomy",
    "Thesaurus",
    "KnowledgeBase",
    "KnowledgeBaseBuilder",
    "DomainBuilder",
    "Expr",
    "MappingContext",
    "MappingRule",
    "OutputMode",
    "Requirement",
    "DamlOntology",
    "parse_daml",
    "import_daml",
    "export_daml",
]

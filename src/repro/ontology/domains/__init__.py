"""Built-in domain ontologies and the multi-domain demo knowledge base.

Each submodule installs one domain-specific ontology (paper §3.2 argues
for many small domain ontologies over one global one);
:func:`build_demo_knowledge_base` combines all three and adds the
*inter-domain* bridge mappings — "it is possible to provide
inter-domain mapping by simply adding additional functions."
"""

from __future__ import annotations

from repro.ontology.knowledge_base import KnowledgeBase
from repro.ontology.mappingdefs import MappingRule
from repro.ontology.domains.electronics import (
    build_electronics_knowledge_base,
    electronics_schema,
    install_electronics_domain,
)
from repro.ontology.domains.jobs import (
    build_jobs_knowledge_base,
    install_jobs_domain,
    jobs_schema,
)
from repro.ontology.domains.vehicles import (
    build_vehicles_knowledge_base,
    install_vehicles_domain,
    vehicles_schema,
)

__all__ = [
    "build_jobs_knowledge_base",
    "build_vehicles_knowledge_base",
    "build_electronics_knowledge_base",
    "install_jobs_domain",
    "install_vehicles_domain",
    "install_electronics_domain",
    "jobs_schema",
    "vehicles_schema",
    "electronics_schema",
    "bridge_rules",
    "build_demo_knowledge_base",
]


def bridge_rules() -> tuple[MappingRule, ...]:
    """Inter-domain mapping functions connecting the three demo domains.

    A resume naming an embedded-software skill (jobs domain) also
    advertises familiarity with embedded systems (electronics domain);
    an automotive-software position links into the vehicles domain; a
    mainframe posting links to mainframe hardware.
    """
    return (
        MappingRule.equivalence(
            "bridge-embedded-skill-to-device",
            {"skill": "embedded software"},
            {"device": "embedded system"},
            domain="bridge",
            description="jobs -> electronics: embedded skill implies device familiarity",
        ),
        MappingRule.equivalence(
            "bridge-mainframe-position-to-hardware",
            {"position": "mainframe developer"},
            {"device": "mainframe"},
            domain="bridge",
            description="jobs -> electronics: mainframe developers know mainframes",
        ),
        MappingRule.equivalence(
            "bridge-automotive-skill-to-vehicles",
            {"skill": "automotive software"},
            {"body_style": "car"},
            domain="bridge",
            description="jobs -> vehicles: automotive software implies car-domain knowledge",
        ),
        MappingRule.equivalence(
            "bridge-fleet-vehicle-to-commercial",
            {"listing_kind": "fleet sale"},
            {"body_style": "commercial vehicle"},
            domain="bridge",
            description="vehicles: fleet listings are commercial-vehicle offers",
        ),
    )


def build_demo_knowledge_base() -> KnowledgeBase:
    """All three domains plus the inter-domain bridges — the knowledge
    base behind the demonstration scenario (paper §4)."""
    kb = KnowledgeBase("demo-kb")
    install_jobs_domain(kb)
    install_vehicles_domain(kb)
    install_electronics_domain(kb)
    # The bridge rules reference skill terms; make sure the jobs
    # taxonomy knows them so hierarchy + bridge compose.
    jobs = kb.taxonomy("jobs")
    jobs.add_chain("embedded software", "systems programming")
    jobs.add_chain("automotive software", "embedded software")
    kb.add_rules(bridge_rules())
    return kb

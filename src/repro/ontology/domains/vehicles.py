"""The vehicles domain ontology — the paper's introductory example.

"If someone is interested in a 'car', the system will not return
notifications about 'vehicles' or 'automobiles' because the matching is
based on the syntax and not on the semantics of the terms" (paper §1).
Here ``car``/``automobile``/``auto`` are value synonyms and the
taxonomy places ``car`` below ``motor vehicle`` below ``vehicle``, so a
subscription on the general term receives specialized publications
(rule R1) and not vice versa (rule R2).
"""

from __future__ import annotations

from repro.model.predicates import Predicate
from repro.model.schema import AttributeSpec, Schema
from repro.ontology.knowledge_base import KnowledgeBase
from repro.ontology.mappingdefs import MappingRule

__all__ = ["DOMAIN", "build_vehicles_knowledge_base", "install_vehicles_domain", "vehicles_schema"]

DOMAIN = "vehicles"

_CHAINS = (
    ("sedan", "car", "motor vehicle", "vehicle"),
    ("coupe", "car"),
    ("hatchback", "car"),
    ("station wagon", "car"),
    ("station wagon", "family vehicle"),
    ("minivan", "family vehicle", "motor vehicle"),
    ("SUV", "car"),
    ("SUV", "off-road vehicle"),
    ("off-road vehicle", "motor vehicle"),
    ("pickup truck", "truck", "commercial vehicle", "motor vehicle"),
    ("semi truck", "truck"),
    ("motorcycle", "two-wheeler", "motor vehicle"),
    ("scooter", "two-wheeler"),
    ("bicycle", "human-powered vehicle", "vehicle"),
    ("electric car", "car"),
    ("electric car", "electric vehicle"),
    ("electric vehicle", "vehicle"),
)

_ATTRIBUTE_SYNONYMS = (
    (("make", "manufacturer", "brand"), "make"),
    (("model", "model_name"), "model"),
    (("price", "cost", "asking_price"), "price"),
    (("mileage", "odometer", "kilometers"), "mileage"),
    (("year", "model_year", "vintage"), "year"),
    (("body_style", "body_type", "category"), "body_style"),
    (("color", "colour", "paint"), "color"),
)

_VALUE_SYNONYMS = (
    (("car", "automobile", "auto"), "car"),
    (("SUV", "sport utility vehicle"), "SUV"),
    (("semi truck", "eighteen wheeler", "big rig"), "semi truck"),
)


def _mapping_rules() -> tuple[MappingRule, ...]:
    return (
        MappingRule.computed(
            "vehicle-age",
            "age",
            "present_year - year",
            domain=DOMAIN,
            description="age = present year - model year",
        ),
        MappingRule.equivalence(
            "classic-car",
            [Predicate.le("year", 1975)],
            {"classification": "classic"},
            domain=DOMAIN,
        ),
        MappingRule.equivalence(
            "budget-price-band",
            [Predicate.lt("price", 10000)],
            {"price_band": "budget"},
            domain=DOMAIN,
        ),
        MappingRule.equivalence(
            "midrange-price-band",
            [Predicate.between("price", 10000, 40000)],
            {"price_band": "midrange"},
            domain=DOMAIN,
        ),
        MappingRule.equivalence(
            "luxury-price-band",
            [Predicate.gt("price", 40000)],
            {"price_band": "luxury"},
            domain=DOMAIN,
        ),
        MappingRule.computed(
            "per-year-mileage",
            "mileage_per_year",
            "mileage / max(1, present_year - year)",
            domain=DOMAIN,
        ),
    )


def install_vehicles_domain(kb: KnowledgeBase) -> KnowledgeBase:
    """Install the vehicles ontology into an existing knowledge base."""
    taxonomy = kb.add_domain(DOMAIN)
    for chain in _CHAINS:
        taxonomy.add_chain(*chain)
    for terms, root in _ATTRIBUTE_SYNONYMS:
        kb.add_attribute_synonyms(terms, root=root)
    for terms, root in _VALUE_SYNONYMS:
        kb.add_value_synonyms(terms, root=root)
    kb.add_rules(_mapping_rules())
    return kb


def build_vehicles_knowledge_base() -> KnowledgeBase:
    """A fresh knowledge base holding only the vehicles domain."""
    return install_vehicles_domain(KnowledgeBase("vehicles-kb"))


def vehicles_schema() -> Schema:
    """Typed schema for vehicle listings."""
    body_styles = tuple({term for chain in _CHAINS for term in chain})
    return Schema(
        DOMAIN,
        [
            AttributeSpec("make", "string"),
            AttributeSpec("model", "string"),
            AttributeSpec("body_style", "string", vocabulary=frozenset(body_styles)),
            AttributeSpec("color", "string"),
            AttributeSpec("price", "number", minimum=0),
            AttributeSpec("mileage", "number", minimum=0),
            AttributeSpec("year", "int", minimum=1900, maximum=2100),
            AttributeSpec("age", "number", minimum=0),
            AttributeSpec("price_band", "string"),
            AttributeSpec("classification", "string"),
        ],
    )

"""The electronics domain ontology.

A third domain exercising the multi-domain deployment of paper §3.2:
"the current trend is to have many domain-specific ontologies/concept
hierarchies, instead of a single, large and global ontology."  The
inter-domain bridge rules connecting electronics to the job-finder
domain live in :func:`repro.ontology.domains.bridges`.
"""

from __future__ import annotations

from repro.model.predicates import Predicate
from repro.model.schema import AttributeSpec, Schema
from repro.ontology.knowledge_base import KnowledgeBase
from repro.ontology.mappingdefs import MappingRule

__all__ = [
    "DOMAIN",
    "build_electronics_knowledge_base",
    "install_electronics_domain",
    "electronics_schema",
]

DOMAIN = "electronics"

_CHAINS = (
    ("gaming laptop", "laptop", "portable computer", "computer", "electronics"),
    ("ultrabook", "laptop"),
    ("workstation", "desktop computer", "computer"),
    ("gaming desktop", "desktop computer"),
    ("server", "computer"),
    ("mainframe", "server"),
    ("tablet", "portable computer"),
    ("smartphone", "mobile phone", "phone", "electronics"),
    ("feature phone", "mobile phone"),
    ("smartwatch", "wearable", "electronics"),
    ("fitness tracker", "wearable"),
    ("microcontroller", "embedded system", "computer"),
    ("single-board computer", "embedded system"),
    ("OLED TV", "television", "display device", "electronics"),
    ("LCD TV", "television"),
    ("monitor", "display device"),
)

_ATTRIBUTE_SYNONYMS = (
    (("cpu", "processor", "chip"), "cpu"),
    (("ram", "memory", "main_memory"), "ram"),
    (("storage", "disk", "drive_capacity"), "storage"),
    (("price", "cost", "retail_price"), "price"),
    (("screen_size", "display_size", "diagonal"), "screen_size"),
    (("device", "product", "item"), "device"),
)

_VALUE_SYNONYMS = (
    (("laptop", "notebook", "notebook computer"), "laptop"),
    (("smartphone", "smart phone"), "smartphone"),
    (("television", "TV", "tv set"), "television"),
)


def _mapping_rules() -> tuple[MappingRule, ...]:
    return (
        MappingRule.computed(
            "total-storage",
            "total_storage",
            "ssd + hdd",
            domain=DOMAIN,
            description="total storage = SSD capacity + HDD capacity",
        ),
        MappingRule.equivalence(
            "large-screen",
            [Predicate.ge("screen_size", 15)],
            {"screen_class": "large screen"},
            domain=DOMAIN,
        ),
        MappingRule.equivalence(
            "compact-screen",
            [Predicate.lt("screen_size", 13)],
            {"screen_class": "compact screen"},
            domain=DOMAIN,
        ),
        MappingRule.equivalence(
            "premium-electronics",
            [Predicate.gt("price", 2000)],
            {"price_band": "premium"},
            domain=DOMAIN,
        ),
    )


def install_electronics_domain(kb: KnowledgeBase) -> KnowledgeBase:
    """Install the electronics ontology into an existing knowledge base."""
    taxonomy = kb.add_domain(DOMAIN)
    for chain in _CHAINS:
        taxonomy.add_chain(*chain)
    for terms, root in _ATTRIBUTE_SYNONYMS:
        kb.add_attribute_synonyms(terms, root=root)
    for terms, root in _VALUE_SYNONYMS:
        kb.add_value_synonyms(terms, root=root)
    kb.add_rules(_mapping_rules())
    return kb


def build_electronics_knowledge_base() -> KnowledgeBase:
    """A fresh knowledge base holding only the electronics domain."""
    return install_electronics_domain(KnowledgeBase("electronics-kb"))


def electronics_schema() -> Schema:
    """Typed schema for electronics listings."""
    devices = tuple({term for chain in _CHAINS for term in chain})
    return Schema(
        DOMAIN,
        [
            AttributeSpec("device", "string", vocabulary=frozenset(devices)),
            AttributeSpec("cpu", "string"),
            AttributeSpec("ram", "number", minimum=0),
            AttributeSpec("storage", "number", minimum=0),
            AttributeSpec("ssd", "number", minimum=0),
            AttributeSpec("hdd", "number", minimum=0),
            AttributeSpec("total_storage", "number", minimum=0),
            AttributeSpec("price", "number", minimum=0),
            AttributeSpec("screen_size", "number", minimum=0),
            AttributeSpec("screen_class", "string"),
            AttributeSpec("price_band", "string"),
        ],
    )

"""The job-finder domain ontology — the paper's running example.

Encodes every semantic relationship the paper uses:

* attribute synonyms: ``school``/``college`` → ``university``;
  ``work_experience`` ↔ ``professional_experience`` is deliberately
  **not** a synonym pair here — the paper's event carries
  ``(work experience, true)`` (a flag) while subscriptions constrain
  ``professional_experience ≥ 4`` (a number); the bridge is the
  mapping function below, exactly as §3.1 develops it;
* a concept hierarchy over degrees, positions, skills and universities
  ("more general terms are higher up");
* the mapping function ``professional_experience =
  present_date − graduation_year`` and the mainframe-developer /
  COBOL-programming correlation from the paper's introduction.
"""

from __future__ import annotations

from repro.model.predicates import Predicate
from repro.model.schema import AttributeSpec, Schema
from repro.ontology.knowledge_base import KnowledgeBase
from repro.ontology.mappingdefs import MappingContext, MappingRule
from repro.model.events import Event
from repro.model.values import Period

__all__ = ["DOMAIN", "build_jobs_knowledge_base", "install_jobs_domain", "jobs_schema"]

DOMAIN = "jobs"

#: Degree ladder, most specific first.
_DEGREE_CHAINS = (
    ("PhD", "doctorate", "graduate degree", "degree"),
    ("DSc", "doctorate"),
    ("MSc", "master's degree", "graduate degree"),
    ("MASc", "master's degree"),
    ("MBA", "master's degree"),
    ("MEng", "master's degree"),
    ("BSc", "bachelor's degree", "undergraduate degree", "degree"),
    ("BA", "bachelor's degree"),
    ("BEng", "bachelor's degree"),
    ("college diploma", "undergraduate degree"),
)

#: Position ladder — the "mainframe developer" branch is the paper's.
_POSITION_CHAINS = (
    ("mainframe developer", "software developer", "developer", "engineer", "employee"),
    ("java developer", "software developer"),
    ("senior java developer", "java developer"),
    ("junior java developer", "java developer"),
    ("web developer", "software developer"),
    ("database developer", "software developer"),
    ("embedded developer", "software developer"),
    ("database administrator", "administrator", "employee"),
    ("system administrator", "administrator"),
    ("qa engineer", "engineer"),
    ("project manager", "manager", "employee"),
    ("engineering manager", "manager"),
    ("recruiter", "employee"),
)

#: Skill ladder.
_SKILL_CHAINS = (
    ("COBOL programming", "mainframe development", "software development", "engineering skill"),
    ("JCL scripting", "mainframe development"),
    ("Java programming", "object-oriented programming", "software development"),
    ("C++ programming", "object-oriented programming"),
    ("Python programming", "object-oriented programming"),
    ("SQL", "database skills", "software development"),
    ("query optimization", "database skills"),
    ("HTML", "web development", "software development"),
    ("JavaScript", "web development"),
    ("assembly programming", "systems programming", "software development"),
    ("C programming", "systems programming"),
)

#: University geography: a subscription on
#: ``university = "Canadian university"`` matches a resume naming
#: "Toronto" (rule R1: specialized event vs. generalized subscription).
_UNIVERSITY_CHAINS = (
    ("Toronto", "Ontario university", "Canadian university", "university"),
    ("Waterloo", "Ontario university"),
    ("Queens", "Ontario university"),
    ("McGill", "Quebec university", "Canadian university"),
    ("UBC", "BC university", "Canadian university"),
    ("MIT", "US university", "university"),
    ("Stanford", "US university"),
    ("Berkeley", "US university"),
    ("Oxford", "UK university", "university"),
    ("Cambridge", "UK university"),
)

_ATTRIBUTE_SYNONYMS = (
    (("university", "school", "college", "alma_mater"), "university"),
    (("degree", "qualification", "diploma"), "degree"),
    (("position", "job_title", "title", "role"), "position"),
    (("skill", "expertise", "competency"), "skill"),
    (("salary", "compensation", "pay", "remuneration"), "salary"),
    (("city", "town", "location"), "city"),
    (("name", "full_name", "candidate_name"), "name"),
)

_VALUE_SYNONYMS = (
    (("PhD", "doctor of philosophy", "Ph.D."), "PhD"),
    (("MSc", "master of science", "M.Sc."), "MSc"),
    (("BSc", "bachelor of science", "B.Sc."), "BSc"),
    (("Toronto", "University of Toronto", "UofT"), "Toronto"),
    (("java developer", "java programmer"), "java developer"),
    (("COBOL programming", "COBOL"), "COBOL programming"),
)


def _total_employment(event: Event, context: MappingContext):
    """Sum the durations of all ``period``/``periodN`` attributes — the
    resume in paper §3.1 lists one period per job held, with no upper
    bound on the job count (the read set is declared to the interest
    index as the open ``period*`` prefix family)."""
    total = 0
    seen = False
    for attribute, value in event.items():
        if attribute == "period" or (attribute.startswith("period") and attribute[6:].isdigit()):
            if isinstance(value, Period):
                seen = True
                total += value.duration(context.present_year)
    if not seen:
        return None
    return (("employment_years", total),)


def _mapping_rules() -> tuple[MappingRule, ...]:
    return (
        # The paper's §3.1 mapping function, verbatim.
        MappingRule.computed(
            "professional-experience-from-graduation",
            "professional_experience",
            "present_year - graduation_year",
            domain=DOMAIN,
            description="professional experience = present date - graduation year",
        ),
        # The paper's §1 example: a "mainframe developer" query should
        # surface resumes that mention COBOL programming in 1960-1980.
        MappingRule.equivalence(
            "cobol-implies-mainframe-developer",
            {"skill": "COBOL programming"},
            {"position": "mainframe developer"},
            domain=DOMAIN,
            description="COBOL programming experience marks a mainframe developer",
        ),
        MappingRule.equivalence(
            "mainframe-position-implies-cobol-skill",
            {"position": "mainframe developer"},
            {"skill": "COBOL programming", "era": Period(1960, 1980)},
            domain=DOMAIN,
            description="mainframe developers are presumed COBOL-era programmers",
        ),
        MappingRule.function(
            "total-employment-from-periods",
            ["period1"],
            _total_employment,
            domain=DOMAIN,
            description="employment_years = sum of job period durations",
            reads=("period", "period*"),
        ),
        MappingRule.computed(
            "graduation-age",
            "years_since_graduation",
            "years_since(graduation_year)",
            domain=DOMAIN,
        ),
        # Salary banding: expert-written categorical abstraction.
        MappingRule.equivalence(
            "salary-band-junior",
            [Predicate.lt("salary", 60000)],
            {"salary_band": "junior band"},
            domain=DOMAIN,
        ),
        MappingRule.equivalence(
            "salary-band-intermediate",
            [Predicate.between("salary", 60000, 100000)],
            {"salary_band": "intermediate band"},
            domain=DOMAIN,
        ),
        MappingRule.equivalence(
            "salary-band-senior",
            [Predicate.gt("salary", 100000)],
            {"salary_band": "senior band"},
            domain=DOMAIN,
        ),
    )


def install_jobs_domain(kb: KnowledgeBase) -> KnowledgeBase:
    """Install the job-finder ontology into an existing knowledge base."""
    taxonomy = kb.add_domain(DOMAIN)
    for chains in (_DEGREE_CHAINS, _POSITION_CHAINS, _SKILL_CHAINS, _UNIVERSITY_CHAINS):
        for chain in chains:
            taxonomy.add_chain(*chain)
    for terms, root in _ATTRIBUTE_SYNONYMS:
        kb.add_attribute_synonyms(terms, root=root)
    for terms, root in _VALUE_SYNONYMS:
        kb.add_value_synonyms(terms, root=root)
    kb.add_rules(_mapping_rules())
    return kb


def build_jobs_knowledge_base() -> KnowledgeBase:
    """A fresh knowledge base holding only the job-finder domain."""
    return install_jobs_domain(KnowledgeBase("jobs-kb"))


def jobs_schema() -> Schema:
    """Typed schema for job-finder events and subscriptions."""
    current_positions = tuple(term for chain in _POSITION_CHAINS for term in chain)
    specs = [
        AttributeSpec("name", "string"),
        AttributeSpec("university", "string"),
        AttributeSpec("degree", "string"),
        AttributeSpec("position", "string", vocabulary=frozenset(current_positions)),
        AttributeSpec("skill", "string"),
        AttributeSpec("city", "string"),
        AttributeSpec("salary", "number", minimum=0),
        AttributeSpec("graduation_year", "int", minimum=1900, maximum=2100),
        AttributeSpec("professional_experience", "number", minimum=0),
        AttributeSpec("employment_years", "number", minimum=0),
        AttributeSpec("work_experience", "bool"),
        AttributeSpec("era", "period"),
    ]
    for i in range(1, 6):
        specs.append(AttributeSpec(f"job{i}", "string"))
        specs.append(AttributeSpec(f"period{i}", "period"))
    return Schema(DOMAIN, specs)

"""Mapping functions: arbitrary many-to-many semantic relationships.

"A mapping function is a many-to-many function that correlates one or
more attribute-value pairs to one or more semantically related
attribute-value pairs … specified by domain experts" (paper §3.1).  The
paper's example::

    professional_experience = present_date − graduation_year

This module provides three ways for a domain expert to write one:

* :meth:`MappingRule.computed` — an arithmetic expression over event
  attributes, parsed by the small :class:`Expr` DSL
  (``"present_year - graduation_year"``).
* :meth:`MappingRule.equivalence` — declarative "when these pairs are
  present, also assert those pairs"; the mainframe-developer example
  becomes ``when {position: "mainframe developer"} then
  {skill: "COBOL programming"}``.
* :meth:`MappingRule.function` — an arbitrary Python callable for
  relationships the DSL cannot express.

Rules declare the attributes they *require*; the mapping stage indexes
rules by required attribute (a hash structure, per the paper's
performance design) so only candidate rules are evaluated per event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.errors import MappingRuleError
from repro.model.attributes import normalize_attribute
from repro.model.events import Event
from repro.model.predicates import Predicate
from repro.model.values import Period, Value, check_value

__all__ = [
    "Expr",
    "MappingContext",
    "MappingRule",
    "OutputMode",
    "Requirement",
]

#: Default evaluation year — the paper's publication year, so its worked
#: example ("graduated 10 years ago", graduation_year 1993) reproduces
#: exactly.  Callers override it via :class:`MappingContext`.
DEFAULT_PRESENT_YEAR = 2003


@dataclass(frozen=True)
class MappingContext:
    """Ambient inputs available to mapping functions.

    ``present_year`` backs the paper's ``present_date``; ``extra``
    carries any additional expert-supplied constants, exposed to
    expressions as variables.
    """

    present_year: int = DEFAULT_PRESENT_YEAR
    extra: tuple[tuple[str, Value], ...] = ()

    def variables(self, event: Event) -> dict[str, Value]:
        """Variable bindings for expression evaluation: event pairs,
        then extras, then builtins (later wins on collision)."""
        bindings: dict[str, Value] = dict(event.items())
        bindings.update(dict(self.extra))
        bindings["present_year"] = self.present_year
        bindings["present_date"] = self.present_year
        return bindings


class _MissingInput(Exception):
    """Internal: expression referenced a variable absent from the event."""


# ---------------------------------------------------------------------------
# Expression DSL
# ---------------------------------------------------------------------------

_FUNCTIONS: dict[str, tuple[int, Callable[..., Value]]] = {}


def _function(name: str, arity: int):
    def register(fn: Callable[..., Value]):
        _FUNCTIONS[name] = (arity, fn)
        return fn

    return register


@_function("abs", 1)
def _fn_abs(ctx: MappingContext, x: Value) -> Value:
    return abs(_as_number(x))


@_function("min", 2)
def _fn_min(ctx: MappingContext, a: Value, b: Value) -> Value:
    return min(_as_number(a), _as_number(b))


@_function("max", 2)
def _fn_max(ctx: MappingContext, a: Value, b: Value) -> Value:
    return max(_as_number(a), _as_number(b))


@_function("duration", 1)
def _fn_duration(ctx: MappingContext, p: Value) -> Value:
    if not isinstance(p, Period):
        raise _MissingInput("duration() requires a period value")
    return p.duration(ctx.present_year)


@_function("start", 1)
def _fn_start(ctx: MappingContext, p: Value) -> Value:
    if not isinstance(p, Period):
        raise _MissingInput("start() requires a period value")
    return p.start


@_function("end", 1)
def _fn_end(ctx: MappingContext, p: Value) -> Value:
    if not isinstance(p, Period):
        raise _MissingInput("end() requires a period value")
    return p.closed_end(ctx.present_year)


@_function("years_since", 1)
def _fn_years_since(ctx: MappingContext, year: Value) -> Value:
    return ctx.present_year - _as_number(year)


def _as_number(value: Value) -> int | float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _MissingInput(f"expected a number, got {value!r}")
    return value


_TOKEN_OPS = {"+": 1, "-": 1, "*": 2, "/": 2}


class Expr:
    """A parsed arithmetic expression over event attributes.

    Supports ``+ - * /``, unary minus, parentheses, numeric literals,
    attribute/context identifiers, and the function set
    ``abs, min, max, duration, start, end, years_since``.

    >>> Expr.parse("present_year - graduation_year").evaluate(
    ...     MappingContext(2003).variables(Event({"graduation_year": 1993})),
    ...     MappingContext(2003))
    10
    """

    __slots__ = ("text", "_rpn", "_variables")

    def __init__(self, text: str, rpn: list, variables: frozenset[str]):
        self.text = text
        self._rpn = rpn
        self._variables = variables

    @property
    def variables(self) -> frozenset[str]:
        """Identifiers the expression reads (before builtin resolution)."""
        return self._variables

    # -- parsing (tokenize + shunting-yard) -----------------------------------

    @classmethod
    def parse(cls, text: str) -> "Expr":
        tokens = cls._tokenize(text)
        rpn = cls._to_rpn(tokens, text)
        variables = frozenset(tok[1] for tok in rpn if tok[0] == "var")
        return cls(text, rpn, variables)

    @staticmethod
    def _tokenize(text: str) -> list[tuple[str, object]]:
        tokens: list[tuple[str, object]] = []
        i, n = 0, len(text)
        while i < n:
            ch = text[i]
            if ch.isspace():
                i += 1
            elif ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
                j = i
                while j < n and (text[j].isdigit() or text[j] == "."):
                    j += 1
                literal = text[i:j]
                try:
                    number: Value = int(literal) if "." not in literal else float(literal)
                except ValueError as exc:
                    raise MappingRuleError(f"bad number {literal!r} in {text!r}") from exc
                tokens.append(("num", number))
                i = j
            elif ch.isalpha() or ch == "_":
                j = i
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                tokens.append(("name", text[i:j].lower()))
                i = j
            elif ch in "+-*/(),":
                tokens.append(("op", ch))
                i += 1
            else:
                raise MappingRuleError(f"unexpected character {ch!r} in expression {text!r}")
        return tokens

    @staticmethod
    def _to_rpn(tokens: list[tuple[str, object]], text: str) -> list:
        output: list = []
        stack: list = []
        prev_kind: str | None = None
        for kind, value in tokens:
            if kind == "num":
                output.append(("num", value))
            elif kind == "name":
                if value in _FUNCTIONS:
                    stack.append(("fn", value))
                else:
                    output.append(("var", value))
            elif value == "(":
                stack.append(("op", "("))
            elif value == ")":
                while stack and stack[-1] != ("op", "("):
                    output.append(stack.pop())
                if not stack:
                    raise MappingRuleError(f"unbalanced ')' in {text!r}")
                stack.pop()
                if stack and stack[-1][0] == "fn":
                    output.append(stack.pop())
            elif value == ",":
                while stack and stack[-1] != ("op", "("):
                    output.append(stack.pop())
                if not stack:
                    raise MappingRuleError(f"misplaced ',' in {text!r}")
            else:  # arithmetic operator
                op = str(value)
                if op == "-" and prev_kind in (None, "op"):
                    op = "neg"
                    precedence = 3
                else:
                    precedence = _TOKEN_OPS[op]
                while (
                    stack
                    and stack[-1][0] == "op"
                    and stack[-1][1] not in ("(",)
                    and _precedence(stack[-1][1]) >= precedence
                ):
                    output.append(stack.pop())
                stack.append(("op", op))
            prev_kind = "op" if (kind == "op" and value not in (")",)) else "operand"
        while stack:
            top = stack.pop()
            if top == ("op", "("):
                raise MappingRuleError(f"unbalanced '(' in {text!r}")
            output.append(top)
        if not output:
            raise MappingRuleError(f"empty expression {text!r}")
        return output

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, bindings: Mapping[str, Value], context: MappingContext) -> Value:
        """Evaluate against variable *bindings*; raises
        :class:`MappingRuleError` for structural errors and the internal
        missing-input signal when a referenced attribute is absent."""
        stack: list[Value] = []
        for kind, value in self._rpn:
            if kind == "num":
                stack.append(value)  # type: ignore[arg-type]
            elif kind == "var":
                if value not in bindings:
                    raise _MissingInput(str(value))
                stack.append(bindings[value])  # type: ignore[index]
            elif kind == "fn":
                arity, fn = _FUNCTIONS[value]  # type: ignore[index]
                if len(stack) < arity:
                    raise MappingRuleError(f"function {value!r} missing arguments")
                args = [stack.pop() for _ in range(arity)][::-1]
                stack.append(fn(context, *args))
            else:  # operator
                if value == "neg":
                    stack.append(-_as_number(stack.pop()))
                    continue
                if len(stack) < 2:
                    raise MappingRuleError(f"operator {value!r} missing operands")
                b, a = _as_number(stack.pop()), _as_number(stack.pop())
                if value == "+":
                    stack.append(a + b)
                elif value == "-":
                    stack.append(a - b)
                elif value == "*":
                    stack.append(a * b)
                else:
                    if b == 0:
                        raise _MissingInput("division by zero")
                    stack.append(a / b)
        if len(stack) != 1:
            raise MappingRuleError(f"malformed expression {self.text!r}")
        result = stack[0]
        if isinstance(result, float) and result.is_integer():
            return int(result)
        return result

    def __repr__(self) -> str:
        return f"Expr({self.text!r})"


def _precedence(op: object) -> int:
    if op == "neg":
        return 3
    return _TOKEN_OPS.get(str(op), 0)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

class OutputMode(enum.Enum):
    """What a rule's outputs do to the source event.

    ``AUGMENT`` keeps the original pairs and adds the outputs (the
    original facts still hold — the paper's derived events accumulate).
    ``REPLACE`` drops the required input attributes first (pure
    rewrites, e.g. unit conversions).
    """

    AUGMENT = "augment"
    REPLACE = "replace"


@dataclass(frozen=True)
class Requirement:
    """One input slot of a mapping rule: an attribute that must be
    present, optionally guarded by a predicate on its value."""

    attribute: str
    predicate: Predicate | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "attribute", normalize_attribute(self.attribute))
        if self.predicate is not None and self.predicate.attribute != self.attribute:
            raise MappingRuleError(
                f"guard predicate {self.predicate} is over "
                f"{self.predicate.attribute!r}, not {self.attribute!r}"
            )

    def satisfied_by(self, event: Event) -> bool:
        if self.attribute not in event:
            return False
        if self.predicate is None:
            return True
        return self.predicate.evaluate(event[self.attribute])


#: A rule output value: a constant, an expression, or a callable
#: ``(event, context) -> Value``.
ValueProducer = object


@dataclass(frozen=True)
class MappingRule:
    """An immutable mapping-function definition.

    Use the classmethod factories (:meth:`computed`,
    :meth:`equivalence`, :meth:`function`) rather than the constructor.

    ``reads`` declares every event attribute whose *value* can influence
    the rule's output or applicability — the contract the engine's
    interest index relies on to prune derived events the rule could
    never make relevant.  For declarative rules it is derived
    automatically (required attributes plus every attribute an output
    expression references); function-backed rules may declare it via
    :meth:`function`'s ``reads`` argument.  An entry ending in ``*``
    declares an open *prefix family* (``"period*"`` covers ``period``,
    ``period1``, ``period12``, …, prefix-matched against normalized
    attribute names) for rules that scan schema-unbounded attribute
    sets; a bare ``"*"`` is equivalent to ``None``.  ``None`` means
    "unknown — the rule may read any attribute", which disables
    demand-driven pruning entirely while that rule is installed (the
    safe default for arbitrary callables).
    """

    name: str
    requires: tuple[Requirement, ...]
    outputs: tuple[tuple[str, ValueProducer], ...] = ()
    fn: Callable[[Event, MappingContext], Iterable[tuple[str, Value]] | None] | None = None
    mode: OutputMode = OutputMode.AUGMENT
    domain: str = ""
    description: str = ""
    reads: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise MappingRuleError("mapping rules must be named")
        if not self.requires:
            raise MappingRuleError(f"rule {self.name!r} requires at least one input attribute")
        if not self.outputs and self.fn is None:
            raise MappingRuleError(f"rule {self.name!r} produces nothing")
        if self.outputs and self.fn is not None:
            raise MappingRuleError(
                f"rule {self.name!r} must use either declarative outputs or a function, not both"
            )
        object.__setattr__(self, "reads", self._resolve_reads())

    def _resolve_reads(self) -> frozenset[str] | None:
        """The attributes this rule's output can depend on.

        Declarative rules derive it statically: required attributes plus
        every event attribute an output :class:`Expr` references.  A
        declared set (function rules) is normalized and unioned with the
        required attributes.  Rules with arbitrary callables and no
        declaration stay ``None`` (reads unknown)."""
        declared = self.reads
        if declared is None and self.fn is not None:
            return None
        read: set[str] = {req.attribute for req in self.requires}
        if declared is not None:
            for attribute in declared:
                if attribute == "*":
                    return None  # reads anything: same as undeclared
                if attribute.endswith("*"):
                    read.add(normalize_attribute(attribute[:-1]) + "*")
                else:
                    read.add(normalize_attribute(attribute))
            return frozenset(read)
        builtin = {"present_year", "present_date"}
        for _, producer in self.outputs:
            if isinstance(producer, Expr):
                for variable in producer.variables - builtin:
                    try:
                        read.add(normalize_attribute(variable))
                    except Exception:
                        # not a legal attribute name: the binding can
                        # only come from context extras, never the event
                        continue
            elif callable(producer):
                return None  # arbitrary callable output: reads unknown
        return frozenset(read)

    # -- factories ---------------------------------------------------------------

    @classmethod
    def computed(
        cls,
        name: str,
        output_attribute: str,
        expression: str | Expr,
        *,
        requires: Iterable[str | Requirement] = (),
        domain: str = "",
        mode: OutputMode = OutputMode.AUGMENT,
        description: str = "",
    ) -> "MappingRule":
        """An arithmetic rule: ``output_attribute = expression``.

        Required attributes default to the expression's variables that
        are not context builtins, so
        ``computed("exp", "professional_experience",
        "present_year - graduation_year")`` requires
        ``graduation_year`` automatically.
        """
        expr = expression if isinstance(expression, Expr) else Expr.parse(expression)
        reqs = [r if isinstance(r, Requirement) else Requirement(r) for r in requires]
        if not reqs:
            builtin = {"present_year", "present_date"}
            reqs = [Requirement(var) for var in sorted(expr.variables - builtin)]
        return cls(
            name=name,
            requires=tuple(reqs),
            outputs=((normalize_attribute(output_attribute), expr),),
            domain=domain,
            mode=mode,
            description=description or f"{output_attribute} = {expr.text}",
        )

    @classmethod
    def equivalence(
        cls,
        name: str,
        when: Mapping[str, Value] | Iterable[Predicate],
        then: Mapping[str, Value],
        *,
        domain: str = "",
        mode: OutputMode = OutputMode.AUGMENT,
        description: str = "",
    ) -> "MappingRule":
        """A declarative rule: when the *when* pairs/predicates hold,
        assert the constant *then* pairs."""
        reqs: list[Requirement] = []
        if isinstance(when, Mapping):
            for attr, value in when.items():
                reqs.append(Requirement(attr, Predicate.eq(attr, value)))
        else:
            for predicate in when:
                reqs.append(Requirement(predicate.attribute, predicate))
        outputs = tuple(
            (normalize_attribute(attr), check_value(value)) for attr, value in then.items()
        )
        if not outputs:
            raise MappingRuleError(f"rule {name!r} has an empty 'then' clause")
        return cls(
            name=name,
            requires=tuple(reqs),
            outputs=outputs,
            domain=domain,
            mode=mode,
            description=description,
        )

    @classmethod
    def function(
        cls,
        name: str,
        requires: Iterable[str | Requirement],
        fn: Callable[[Event, MappingContext], Iterable[tuple[str, Value]] | None],
        *,
        domain: str = "",
        mode: OutputMode = OutputMode.AUGMENT,
        description: str = "",
        reads: Iterable[str] | None = None,
    ) -> "MappingRule":
        """An arbitrary-callable rule; *fn* returns output pairs, or
        ``None``/empty to decline.

        ``reads`` declares the attributes (beyond ``requires``) whose
        values *fn* may consult — the contract that keeps demand-driven
        expansion pruning sound.  A trailing-``*`` entry declares an
        open prefix family (``"period*"``) for callables that scan
        schema-unbounded attribute sets.  Omit it (``None``) when the
        callable's inputs cannot be enumerated at all; pruning is then
        disabled while the rule is installed."""
        reqs = tuple(r if isinstance(r, Requirement) else Requirement(r) for r in requires)
        if not reqs:
            raise MappingRuleError(f"function rule {name!r} must declare required attributes")
        return cls(
            name=name,
            requires=reqs,
            fn=fn,
            domain=domain,
            mode=mode,
            description=description,
            reads=None if reads is None else frozenset(reads),
        )

    # -- application ----------------------------------------------------------------

    @property
    def trigger_attributes(self) -> frozenset[str]:
        """Attributes whose presence makes this rule a candidate — the
        hash-index key of the mapping stage."""
        return frozenset(req.attribute for req in self.requires)

    def applicable(self, event: Event) -> bool:
        """Whether every required input is present and passes its guard."""
        return all(req.satisfied_by(event) for req in self.requires)

    def produce(
        self, event: Event, context: MappingContext
    ) -> tuple[tuple[str, Value], ...] | None:
        """Compute the output pairs for *event*, or ``None`` when the
        rule declines (inapplicable, missing inputs, or an evaluation
        dead-end such as a type mismatch)."""
        if not self.applicable(event):
            return None
        if self.fn is not None:
            produced = self.fn(event, context)
            if not produced:
                return None
            return tuple(
                (normalize_attribute(attr), check_value(value)) for attr, value in produced
            )
        bindings: dict[str, Value] | None = None
        results: list[tuple[str, Value]] = []
        for attr, producer in self.outputs:
            if isinstance(producer, Expr):
                if bindings is None:
                    bindings = context.variables(event)
                try:
                    value = producer.evaluate(bindings, context)
                except _MissingInput:
                    return None
            elif callable(producer):
                value = producer(event, context)
                if value is None:
                    return None
            else:
                value = producer  # constant
            results.append((attr, check_value(value)))
        return tuple(results)

    def apply(self, event: Event, context: MappingContext) -> Event | None:
        """Derive a new event from *event*, or ``None`` when the rule
        declines or would produce an identical event."""
        produced = self.produce(event, context)
        if produced is None:
            return None
        if self.mode is OutputMode.REPLACE:
            base = event
            for req in self.requires:
                base = base.without(req.attribute)
            derived = base.with_pairs(produced)
        else:
            derived = event.with_pairs(produced)
        if derived == event:
            return None
        return derived

    def __str__(self) -> str:
        inputs = ", ".join(str(r.predicate) if r.predicate else r.attribute for r in self.requires)
        return f"MappingRule({self.name}: [{inputs}] -> {len(self.outputs) or 'fn'})"

"""Merging engine statistics across shard replicas.

The sharded broker runs N independent engines, each with its own
counters, caches, and interest index.  Operators (and ``stopss demo``)
want one aggregate view with the same shape as a single
:meth:`~repro.core.engine.SToPSS.stats` snapshot, so per-shard and
aggregate views print through the same code path.

Merging rules:

* numeric counters **sum** across shards (work is additive);
* keys in :data:`MAX_KEYS` take the **max** — ``publications`` counts
  logical publications (every shard sees every publish, so summing
  would multiply by the shard count), ``capacity``/``version``/
  ``semantic_epoch`` are per-shard configuration, not work;
* booleans **or** together (``interest.enabled`` is true when any
  shard can prune);
* strings collapse to the common value, or ``"mixed"`` when shards
  disagree (a reconfigure that failed half-way would surface here);
* ``*_rate`` fields are never summed: the two rates whose numerator
  and denominator travel beside them (``hit_rate`` next to
  ``hits``/``misses``, ``prune_hit_rate`` next to
  ``candidates_pruned``/``prune_checks``) are **recomputed** from the
  merged counters; any other rate falls back to the plain mean across
  shards (approximate, but never the nonsense a sum would be);
* ``None`` values — a counter a codec-deserialized snapshot simply
  lacks — are skipped rather than poisoning the merge to ``"mixed"``.

Snapshots that crossed a process or serialization boundary (the
process-executor data plane, recorded JSON payloads) go through
:func:`stats_from_wire` first, which undoes the key/tuple mangling
JSON round-trips inflict.

:func:`publish_path_summary` is the defensive extraction layer on top:
every field the ``stopss demo`` publish table prints, via ``.get`` with
zero defaults, so engine variants that lack a counter (third-party
engines, syntactic mode, merged shard views) render as 0 instead of
raising ``KeyError``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "merge_stats",
    "publish_path_summary",
    "stats_from_wire",
    "supervision_summary",
]

#: keys whose values are configuration or logical counts shared by all
#: shards — merged by max, not sum
MAX_KEYS = frozenset({"publications", "capacity", "version", "semantic_epoch"})


def _merge_values(key: object, values: list[object]) -> object:
    # nested maps may key by non-strings (derived_histogram buckets)
    values = [value for value in values if value is not None]
    if not values:
        return None
    if all(isinstance(value, bool) for value in values):
        return any(values)
    if all(isinstance(value, (int, float)) for value in values):
        if key in MAX_KEYS:
            return max(values)
        if isinstance(key, str) and key.endswith("_rate"):
            # a summed rate is meaningless; the known rates are
            # recomputed from merged counters afterwards, unknown ones
            # keep the mean as the least-wrong aggregate.
            return sum(values) / len(values)
        return sum(values)
    if all(isinstance(value, Mapping) for value in values):
        return merge_stats(values)  # type: ignore[arg-type]
    if all(values[0] == value for value in values[1:]):
        return values[0]
    return "mixed"


def _recompute_rates(merged: dict[str, object]) -> None:
    """Replace summed ``*hit_rate`` fields with the ratio of the merged
    numerator and denominator sitting next to them."""
    if "hit_rate" in merged:
        hits = merged.get("hits", 0)
        lookups = hits + merged.get("misses", 0)  # type: ignore[operator]
        merged["hit_rate"] = (hits / lookups) if lookups else 0.0  # type: ignore[operator]
    if "prune_hit_rate" in merged:
        pruned = merged.get("candidates_pruned", 0)
        checks = merged.get("prune_checks", 0)
        merged["prune_hit_rate"] = (pruned / checks) if checks else 0.0  # type: ignore[operator]


def merge_stats(snapshots: Sequence[Mapping[str, object]]) -> dict[str, object]:
    """One aggregate stats dict over per-shard snapshots, preserving
    the union of their keys (see the module docstring for the
    per-field rules).  A single snapshot merges to a plain copy, so
    one code path serves sharded and unsharded views alike."""
    merged: dict[str, object] = {}
    # first-seen key order keeps the merged dict deterministic across
    # runs (a plain set union would inherit salted-hash ordering and
    # churn recorded JSON payloads; sorted() would choke on the
    # non-string histogram keys nested maps legitimately carry)
    for key in dict.fromkeys(key for snapshot in snapshots for key in snapshot):
        values = [snapshot[key] for snapshot in snapshots if key in snapshot]
        merged[key] = _merge_values(key, values)
    _recompute_rates(merged)
    return merged


def stats_from_wire(snapshot):
    """Normalize a stats snapshot that crossed a process or JSON
    boundary back into the in-process shape :func:`merge_stats`
    expects.

    Pickled snapshots survive intact, but snapshots that round-tripped
    through JSON (a monitoring pipeline, a recorded payload) come back
    with every mapping key stringified and every tuple listified; this
    re-coerces digit-string keys to ints (the ``derived_histogram``
    buckets) and lists to tuples so merged aggregates stay comparable
    with native ones.  Non-mapping values pass through untouched."""
    if isinstance(snapshot, Mapping):
        normalized = {}
        for key, value in snapshot.items():
            if isinstance(key, str) and key.isdigit():
                key = int(key)
            normalized[key] = stats_from_wire(value)
        return normalized
    if isinstance(snapshot, list):
        return tuple(stats_from_wire(value) for value in snapshot)
    return snapshot


def publish_path_summary(
    engine_stats: Mapping[str, object],
    result_cache: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """The ``stopss demo`` publish-table row for one engine-stats
    snapshot (single engine or merged shard aggregate), with zero
    defaults for any counter the engine variant does not expose."""

    def section(name: str) -> Mapping[str, object]:
        value = engine_stats.get(name)
        return value if isinstance(value, Mapping) else {}

    matcher = section("matcher_stats")
    cache = section("expansion_cache")
    interest = section("interest")
    cached = result_cache if result_cache is not None else {}
    batches = matcher.get("batches", 0)
    vectorized = matcher.get("vectorized_batches", 0)
    return {
        "batches": batches,
        "derived": engine_stats.get("derived_events", 0),
        "pruned": interest.get("candidates_pruned", 0),
        "prune_hit_rate": interest.get("prune_hit_rate", 0.0),
        "predicate_evaluations": matcher.get("predicate_evaluations", 0),
        "probes_saved": matcher.get("probes_saved", 0),
        "memo_hits": matcher.get("memo_hits", 0),
        # kernel counters: only the vectorized backends bump these, so
        # scalar (and mixed-shard) snapshots render as zeros, never
        # KeyError — exactly the defensive contract of this layer.
        "vectorized_batches": vectorized,
        "vectorized_batch_rate": (vectorized / batches) if batches else 0.0,
        "rows_evaluated": matcher.get("rows_evaluated", 0),
        "scalar_fallbacks": matcher.get("scalar_fallbacks", 0),
        "expansion_cache_hit_rate": cache.get("hit_rate", 0.0),
        "result_cache_hit_rate": cached.get("hit_rate", 0.0),
    }


def supervision_summary(engine_stats: Mapping[str, object]) -> dict[str, object]:
    """The ``stopss demo`` health-table row for one engine-stats
    snapshot: the sharded data plane's recovery counters plus breaker
    states, with safe defaults for engines that have no ``sharding``
    section (a plain single engine) or predate the supervision layer.

    Counters are all zero exactly when the run never needed a recovery
    intervention — the chaos acceptance criteria assert on this."""

    def section(source: Mapping[str, object], name: str) -> Mapping[str, object]:
        value = source.get(name)
        return value if isinstance(value, Mapping) else {}

    sharding = section(engine_stats, "sharding")
    supervision = section(sharding, "supervision")
    breaker_states = sharding.get("breaker_states")
    if not isinstance(breaker_states, (list, tuple)):
        breaker_states = []
    restarts = supervision.get("worker_restarts", 0)
    retries = supervision.get("publish_retries", 0)
    degraded = supervision.get("degraded_publishes", 0)
    opens = supervision.get("breaker_opens", 0)
    return {
        "worker_restarts": restarts,
        "publish_retries": retries,
        "degraded_publishes": degraded,
        "breaker_opens": opens,
        "snapshot_fallbacks": supervision.get("snapshot_fallbacks", 0),
        "stale_replies_discarded": supervision.get("stale_replies_discarded", 0),
        "restart_seconds": supervision.get("restart_seconds", 0.0),
        "breakers_open": sum(1 for state in breaker_states if state != "closed"),
        "breaker_states": list(breaker_states),
        "recoveries": restarts + retries + degraded + opens,  # type: ignore[operator]
    }


def durability_summary(stats: Mapping[str, object]) -> dict[str, object]:
    """The durability health row for one broker-stats snapshot: the
    write-ahead journal and recovery counters, with safe all-zero
    defaults (and ``enabled: False``) for brokers that carry no
    ``durability`` section — an in-memory broker is simply a broker
    whose journal never needed to exist."""
    section = stats.get("durability")
    if not isinstance(section, Mapping):
        section = {}
    return {
        "enabled": bool(section),
        "journal_appends": section.get("journal_appends", 0),
        "journal_bytes": section.get("journal_bytes", 0),
        "snapshot_compactions": section.get("snapshot_compactions", 0),
        "torn_tail_truncations": section.get("torn_tail_truncations", 0),
        "replayed_deliveries": section.get("replayed_deliveries", 0),
        "dedup_drops": section.get("dedup_drops", 0),
        "replay_skips": section.get("replay_skips", 0),
    }

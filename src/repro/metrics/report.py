"""Plain-text result tables for the experiment harness.

Every benchmark prints its rows through :class:`Table`, so
``EXPERIMENTS.md`` and the bench output share one format and the
paper-vs-measured comparison is copy-pasteable.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["Table", "format_row"]


def _render_cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    rendered = [
        _render_cell(cell).rjust(width) if index else _render_cell(cell).ljust(width)
        for index, (cell, width) in enumerate(zip(cells, widths))
    ]
    return "  ".join(rendered)


class Table:
    """An ASCII table with a title, headers, and typed cells.

    >>> t = Table("demo", ["name", "value"])
    >>> t.add("alpha", 1)
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[object]] = []

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(f"row has {len(cells)} cells, table has {len(self.headers)} columns")
        self.rows.append(list(cells))

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(_render_cell(cell)))
        lines = [self.title, "=" * len(self.title)]
        lines.append(format_row(self.headers, widths))
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(format_row(row, widths))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()

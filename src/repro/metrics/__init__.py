"""Measurement substrate: counters, timers, and report tables used by
the benchmark/experiment harness."""

from repro.metrics.aggregate import (
    durability_summary,
    merge_stats,
    publish_path_summary,
    supervision_summary,
)
from repro.metrics.counters import CounterRegistry
from repro.metrics.report import Table, format_row
from repro.metrics.timers import Timer, TimingSummary, measure

__all__ = [
    "CounterRegistry",
    "Table",
    "format_row",
    "Timer",
    "TimingSummary",
    "measure",
    "durability_summary",
    "merge_stats",
    "publish_path_summary",
    "supervision_summary",
]

"""Hierarchical counter registry used by benchmarks and reports.

A tiny metrics substrate: named integer counters with dotted paths
(``"engine.publications"``), grouped snapshots, and diffing — enough to
express every measurement the experiment suite reports without pulling
in a telemetry dependency.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["CounterRegistry"]


class CounterRegistry:
    """Mutable named counters with dotted-path grouping."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def bump(self, name: str, amount: int = 1) -> int:
        """Increment ``name`` by ``amount``; returns the new value."""
        value = self._counts.get(name, 0) + amount
        self._counts[name] = value
        return value

    def set(self, name: str, value: int) -> None:
        self._counts[name] = value

    def get(self, name: str, default: int = 0) -> int:
        return self._counts.get(name, default)

    def __getitem__(self, name: str) -> int:
        return self._counts[name]

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def group(self, prefix: str) -> dict[str, int]:
        """Counters under ``prefix.`` with the prefix stripped."""
        dotted = prefix.rstrip(".") + "."
        return {
            name[len(dotted):]: value
            for name, value in self._counts.items()
            if name.startswith(dotted)
        }

    def snapshot(self) -> dict[str, int]:
        return dict(self._counts)

    def diff(self, earlier: dict[str, int]) -> dict[str, int]:
        """Per-counter change versus an earlier snapshot."""
        keys = set(self._counts) | set(earlier)
        return {key: self._counts.get(key, 0) - earlier.get(key, 0) for key in sorted(keys)}

    def merge(self, other: "CounterRegistry") -> None:
        for name, value in other.snapshot().items():
            self.bump(name, value)

    def reset(self) -> None:
        self._counts.clear()

"""Wall-clock timing helpers for the benchmark harness."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

__all__ = ["Timer", "TimingSummary", "measure"]


@dataclass
class TimingSummary:
    """Aggregate of repeated timings, in seconds."""

    samples: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        self.samples.append(seconds)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        return statistics.median(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def per_second(self, operations: int = 1) -> float:
        """Throughput: operations per wall-clock second of mean time."""
        if not self.samples or self.mean == 0:
            return 0.0
        return operations / self.mean


class Timer:
    """Context-manager stopwatch feeding a :class:`TimingSummary`.

    >>> summary = TimingSummary()
    >>> with Timer(summary):
    ...     pass
    >>> summary.count
    1
    """

    def __init__(self, summary: TimingSummary | None = None) -> None:
        self.summary = summary
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self.summary is not None:
            self.summary.add(self.elapsed)


def measure(fn, *args, repeat: int = 1, **kwargs) -> tuple[object, TimingSummary]:
    """Call ``fn`` ``repeat`` times; returns (last result, timings)."""
    summary = TimingSummary()
    result = None
    for _ in range(max(1, repeat)):
        with Timer(summary):
            result = fn(*args, **kwargs)
    return result, summary

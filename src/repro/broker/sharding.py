"""Sharded broker: subscription-partitioned engine replicas.

S-ToPSS describes one semantic engine; its companion paper frames the
problem at Internet scale, where later systems (VCube-PS, Topiary)
partition the *subscription population* across workers.  This module is
that scale-out axis: :class:`ShardedEngine` hash-partitions stored
subscriptions across N independent engine replicas that share one
:class:`~repro.ontology.knowledge_base.KnowledgeBase` (and therefore
one version-synced :class:`~repro.ontology.concept_table.ConceptTable`
snapshot — its lazy closure fills are lock-guarded for exactly this
use), fans each publication out across the shards through a pluggable
executor, and merges the per-shard match sets back into the global
subscription insertion order the single-engine design reports.

Why this composes without new invariants: a publication's match set is
a per-subscription minimum, so partitioning subscriptions partitions
the match set exactly — the union over shards *is* the single-engine
result, generality values included (pinned as a hard property test,
``tests/property/test_sharding_equivalence.py``).  Each replica keeps
its own matcher, caches, memos, and
:class:`~repro.core.interest.InterestIndex`, so demand-driven pruning
gets *sharper* per shard: fewer live subscriptions mean smaller
accepted sets and a cheaper per-shard expansion.

Concurrency contract: parallelism is *across shards within one
publication* — the executor maps the shard engines concurrently, and
every structure a shard touches during publish is either replica-local
(matcher, caches, counters, interest index) or a lock-guarded shared
snapshot (the concept table).  The facade itself is not re-entrant:
one ``publish``/``subscribe``/``reconfigure`` at a time, exactly the
discipline the :class:`~repro.broker.dispatcher.EventDispatcher`
already imposes.

Subscription churn routes to the owning shard (the router is a stable
content hash of the subscription id, so unsubscribe finds the same
shard without a lookup table); ``reconfigure``, ``refresh``, and
``bump_semantic_epoch`` route to *every* shard, and knowledge-base
motion needs no routing at all — each replica's publish path already
re-syncs against ``kb.version`` through the existing semantic-version/
epoch plumbing.

Three executors ship, one per concurrency regime
(``docs/CONCURRENCY.md`` is the full contract):
:class:`SerialExecutor` runs shards inline;
:class:`ThreadedExecutor` overlaps them on threads (GIL-bound for this
pure-Python work — wall-clock on one interpreter does not improve);
:class:`ProcessExecutor` gives each shard its own worker *process*,
which is where the 4-shard critical-path gain becomes real wall-clock.
Processes cannot share the in-memory replicas, so the distributed path
trades the ``map``-a-closure seam for a data plane: publications cross
as compact interned-id wire tuples
(:meth:`Event.to_wire <repro.model.events.Event.to_wire>`), the
concept table's closure arrays cross *once* as a read-only
shared-memory snapshot (:class:`~repro.ontology.concept_table.
SharedClosureSnapshot`), and match results come back as wire tuples
the parent decodes against its own table.  The parent keeps its local
replicas as the control plane — the routing/ordering source of truth
that also lets the fleet be rebuilt from scratch whenever the
knowledge base moves (forked workers never see parent KB mutations).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, Sequence

from repro.broker.broker import Broker
from repro.broker.transports import TransportRegistry
from repro.core.config import SemanticConfig
from repro.core.engine import SToPSS
from repro.core.pipeline import PipelineResult
from repro.core.provenance import DerivedEvent, SemanticMatch
from repro.errors import BrokerError, ConfigError, UnknownSubscriptionError
from repro.matching.base import MatchingAlgorithm
from repro.metrics.aggregate import merge_stats, stats_from_wire
from repro.model.events import Event, wire_fallback_count
from repro.model.subscriptions import Subscription
from repro.ontology.concept_table import SharedClosureSnapshot
from repro.ontology.knowledge_base import KnowledgeBase

__all__ = [
    "ShardedBroker",
    "ShardedEngine",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "default_router",
]


def default_router(sub_id: str, shards: int) -> int:
    """Stable hash routing: CRC-32 of the subscription id modulo the
    shard count.  Deliberately *not* Python's salted ``hash()`` — the
    assignment must be reproducible across processes and runs so
    traces, benchmarks, and a restarted broker agree on ownership."""
    return zlib.crc32(sub_id.encode("utf-8")) % shards


class SerialExecutor:
    """Fan-out executor that runs shard tasks inline, in order.  The
    zero-dependency baseline: same results as the threaded executor,
    wall-clock equal to the summed per-shard cost."""

    name = "serial"

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(item) for item in items]

    def close(self) -> None:
        """Nothing to release."""


class ThreadedExecutor:
    """Fan-out executor backed by a lazily created
    :class:`~concurrent.futures.ThreadPoolExecutor`.

    Shard publish work is pure Python, so on a stock (GIL) interpreter
    threads *interleave* rather than overlap — the wall-clock win
    appears on free-threaded builds or multi-core machines running
    subinterpreter/worker deployments; on one core the measured
    per-shard CPU (``critical_path_seconds`` in the sharding stats) is
    the honest scale-out signal.  See ``docs/PERFORMANCE.md``.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        #: one instance may be borrowed by several engines publishing
        #: from different threads; the lazy pool creation must not race
        #: (a lost ThreadPoolExecutor could never be shut down).
        self._init_lock = threading.Lock()

    def map(self, fn: Callable, items: Sequence) -> list:
        pool = self._pool
        if pool is None:
            with self._init_lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = ThreadPoolExecutor(
                        max_workers=self._max_workers, thread_name_prefix="stopss-shard"
                    )
        return list(pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor:
    """Fan-out executor that runs each shard replica in its own worker
    *process* — the executor that actually breaks the GIL, turning the
    measured per-shard critical path into wall-clock on >= N cores.

    Worker processes cannot call the engine's bound ``_publish_shard``
    closure, so :class:`ShardedEngine` detects the ``distributed``
    marker and routes its traffic through a wire-codec data plane
    (:class:`_ProcessDataPlane`) instead of ``map``; ``map`` itself
    only serves third-party callers and runs inline.  The engine owns
    the worker fleet and tears it down on ``close()`` whether or not it
    owns this executor object.

    ``start_method`` defaults to ``"fork"`` where available (workers
    inherit the knowledge base without pickling, so KBs carrying
    arbitrary mapping functions work); ``"spawn"`` requires the KB,
    engine factory, and matcher spec to be picklable.  One instance
    configures one engine's fleet at a time.
    """

    name = "process"
    #: tells ShardedEngine to run its cross-process data plane
    distributed = True

    def __init__(
        self, start_method: str | None = None, request_timeout: float = 120.0
    ) -> None:
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else None
        self.start_method = start_method
        self.request_timeout = request_timeout

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(item) for item in items]

    def close(self) -> None:
        """Nothing to release here — worker processes belong to the
        engine's data plane, which the engine closes."""


def _send_error(conn, exc: BaseException) -> None:
    """Ship a worker-side failure to the parent, preserving the original
    exception when it pickles (so the parent re-raises the same type the
    single-engine path would) and degrading to a string otherwise."""
    try:
        conn.send(("err", exc))
    except Exception:
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except Exception:  # parent is gone; nothing left to report to
            pass


def _worker_publish(engine, kb, wire) -> tuple:
    """One publication inside a shard worker: decode, publish, encode.

    The reply deduplicates derived events — many matches share one
    ``matched_via`` — as ``(derived wire tuples, (sub_id, generality,
    derived index) rows, publish thread-CPU span)``."""
    table = kb.concept_table() if engine.config.interning else None
    event = Event.from_wire(wire, table)
    started = time.thread_time()
    matches = engine.publish(event)
    span = time.thread_time() - started
    derived_wires: list = []
    index_of: dict[int, int] = {}
    rows = []
    for match in matches:
        key = id(match.matched_via)
        via_index = index_of.get(key)
        if via_index is None:
            via_index = index_of[key] = len(derived_wires)
            derived_wires.append(match.matched_via.to_wire(table))
        rows.append((match.subscription.sub_id, match.generality, via_index))
    return tuple(derived_wires), rows, span


def _shard_worker_main(
    conn, kb, factory, matcher, config, subscriptions, snapshot_descriptor
) -> None:
    """Entry point of one shard worker process.

    Builds the replica engine (adopting the parent's shared-memory
    closure snapshot when it still matches this KB version), subscribes
    the shard's originals in global insertion order, acknowledges
    readiness, then serves the request/reply loop until ``stop`` or a
    closed pipe.  Every request is answered with ``("ok", payload)`` or
    ``("err", exception-or-text)`` — the worker never dies on an
    engine error, only on a broken parent."""
    snapshot = None
    try:
        if snapshot_descriptor is not None:
            try:
                snapshot = SharedClosureSnapshot.attach(snapshot_descriptor)
                kb.concept_table().adopt_snapshot(snapshot)
            except Exception:
                # the snapshot is an optimization, never a correctness
                # dependency: on any mismatch fall back to local fills.
                if snapshot is not None:
                    snapshot.close()
                snapshot = None
        engine = factory(kb, matcher=matcher, config=config)
        for subscription in subscriptions:
            engine.subscribe(subscription)
    except BaseException as exc:
        _send_error(conn, exc)
        conn.close()
        return
    conn.send(("ok", None))
    try:
        while True:
            try:
                op, payload = conn.recv()
            except (EOFError, OSError):
                break
            if op == "stop":
                conn.send(("ok", None))
                break
            try:
                if op == "publish":
                    conn.send(("ok", _worker_publish(engine, kb, payload)))
                elif op == "subscribe":
                    engine.subscribe(payload)
                    conn.send(("ok", None))
                elif op == "unsubscribe":
                    engine.unsubscribe(payload)
                    conn.send(("ok", None))
                elif op == "reconfigure":
                    engine.reconfigure(payload)
                    conn.send(("ok", None))
                elif op == "epoch":
                    engine.bump_semantic_epoch(payload)
                    conn.send(("ok", None))
                elif op == "refresh":
                    refreshed = engine.refresh() if hasattr(engine, "refresh") else 0
                    conn.send(("ok", refreshed))
                elif op == "stats":
                    conn.send(("ok", engine.stats()))
                else:
                    conn.send(("err", f"unknown op {op!r}"))
            except BaseException as exc:
                _send_error(conn, exc)
    finally:
        if snapshot is not None:
            snapshot.close()
        conn.close()


class _ProcessDataPlane:
    """The worker-process fleet behind a distributed executor: one
    daemon process per shard, a duplex pipe each, and one shared-memory
    closure snapshot (see the module docstring for the design).

    The plane is a disposable cache of the parent's control plane: the
    parent rebuilds it from its local replicas whenever the knowledge
    base version drifts (forked workers cannot observe parent KB
    mutations), so every operation here may assume a version-stable
    world."""

    def __init__(
        self,
        kb,
        factory,
        matcher,
        config,
        shard_subscriptions,
        *,
        start_method=None,
        request_timeout: float = 120.0,
    ) -> None:
        self.kb_version = kb.version
        self.request_timeout = request_timeout
        self._snapshot = None
        descriptor = None
        if config.interning:
            try:
                table = kb.concept_table()
                # the parent never publishes locally under this plane, so
                # its ancestor closures would stay cold; warm them once
                # here so the snapshot carries the whole value-term space
                # (descent closures were already warmed by subscribe-time
                # expansion wherever the engine design uses them).
                table.warm_closures(up=True)
                self._snapshot = table.export_shared()
                descriptor = self._snapshot.descriptor()
            except Exception:
                # no shared memory on this platform: workers re-derive.
                if self._snapshot is not None:
                    self._snapshot.close()
                    self._snapshot.unlink()
                self._snapshot = None
                descriptor = None
        context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._workers: list = []
        try:
            for index, subscriptions in enumerate(shard_subscriptions):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_shard_worker_main,
                    args=(
                        child_conn,
                        kb,
                        factory,
                        matcher,
                        config,
                        list(subscriptions),
                        descriptor,
                    ),
                    daemon=True,
                    name=f"stopss-shard-{index}",
                )
                process.start()
                child_conn.close()
                self._workers.append((process, parent_conn))
            for process, conn in self._workers:
                self._expect(process, conn)  # readiness ack
        except BaseException:
            self.close()
            raise

    @property
    def workers(self) -> int:
        return len(self._workers)

    def _expect(self, process, conn):
        deadline = time.monotonic() + self.request_timeout
        while not conn.poll(0.05):
            if not process.is_alive():
                raise BrokerError(
                    f"shard worker {process.name} died (exit code {process.exitcode})"
                )
            if time.monotonic() >= deadline:
                raise BrokerError(
                    f"shard worker {process.name} did not answer within "
                    f"{self.request_timeout:.0f}s"
                )
        status, payload = conn.recv()
        if status == "err":
            if isinstance(payload, BaseException):
                raise payload
            raise BrokerError(f"shard worker {process.name} failed: {payload}")
        return payload

    def request(self, index: int, op: str, payload=None):
        """One request/reply round-trip with a single shard worker."""
        process, conn = self._workers[index]
        conn.send((op, payload))
        return self._expect(process, conn)

    def broadcast(self, op: str, payload=None) -> list:
        """Send to every worker, then collect every reply (the sends all
        go out before the first receive, so workers run concurrently)."""
        for _, conn in self._workers:
            conn.send((op, payload))
        return [self._expect(process, conn) for process, conn in self._workers]

    def publish(self, wire) -> list:
        """Fan one encoded publication out across the fleet."""
        return self.broadcast("publish", wire)

    def stats(self) -> list:
        return [stats_from_wire(snapshot) for snapshot in self.broadcast("stats")]

    def close(self) -> None:
        """Stop and reap every worker, then destroy the shared segment."""
        workers, self._workers = self._workers, []
        for _, conn in workers:
            try:
                conn.send(("stop", None))
            except (OSError, ValueError):
                pass
        for process, conn in workers:
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        if self._snapshot is not None:
            self._snapshot.close()
            self._snapshot.unlink()
            self._snapshot = None


_EXECUTORS = {
    "serial": SerialExecutor,
    "threads": ThreadedExecutor,
    "threaded": ThreadedExecutor,
    "process": ProcessExecutor,
    "processes": ProcessExecutor,
}


def _resolve_executor(executor) -> tuple[object, bool]:
    """``(executor, owned)`` — string specs construct a fresh executor
    the engine closes on :meth:`ShardedEngine.close`; instances are
    borrowed and left running."""
    if isinstance(executor, str):
        try:
            return _EXECUTORS[executor](), True
        except KeyError:
            raise ConfigError(
                f"unknown executor {executor!r} (expected one of {sorted(_EXECUTORS)})"
            ) from None
    if not callable(getattr(executor, "map", None)):
        raise ConfigError("executor must provide map(fn, items)")
    return executor, False


class ShardedEngine:
    """N engine replicas behind the single-engine interface.

    Satisfies everything :class:`~repro.broker.dispatcher.
    EventDispatcher` (and therefore :class:`~repro.broker.broker.
    Broker`) needs from an engine — ``subscribe`` / ``unsubscribe`` /
    ``publish`` / ``reconfigure`` / ``subscriptions`` / ``stats`` and
    the ``semantic_version`` / ``subscription_epoch`` cache-key
    properties — so the existing dispatcher, result cache, and
    notification plumbing work unchanged on top of it.

    Parameters
    ----------
    kb:
        The shared knowledge base.  All replicas read the same object
        and the same concept-table snapshot.
    shards:
        Replica count (>= 1).  One shard degenerates to a thin wrapper
        around a plain engine: no executor hop, no merge sort.
    matcher:
        A *registered* matcher name, instantiated once per shard.  A
        :class:`MatchingAlgorithm` instance cannot be shared across
        replicas (its indexes embed one shard's subscriptions), so
        instances are rejected whenever ``shards > 1``.
    engine_factory:
        ``factory(kb, *, matcher=..., config=...) -> engine`` building
        one replica — defaults to :class:`~repro.core.engine.SToPSS`;
        pass :class:`~repro.core.subexpand.SubscriptionExpandingEngine`
        to shard the subscription-side design.
    executor:
        ``"serial"`` (default), ``"threads"``, ``"process"``, or any
        object with ``map(fn, items)`` — how the publish fan-out runs.
        An executor whose ``distributed`` attribute is true routes
        publishes through the worker-process data plane instead of
        ``map`` (see :class:`ProcessExecutor`).
    router:
        ``router(sub_id, shards) -> shard index`` override; defaults to
        :func:`default_router`.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        *,
        shards: int = 4,
        matcher: str | MatchingAlgorithm = "counting",
        config: SemanticConfig | None = None,
        engine_factory: Callable | None = None,
        executor: object | str = "serial",
        router: Callable[[str, int], int] | None = None,
    ) -> None:
        if shards < 1:
            raise ConfigError("shards must be >= 1")
        if not isinstance(matcher, str) and shards > 1:
            raise ConfigError(
                "a matcher instance cannot back multiple shards; pass a "
                "registered matcher name so each replica gets its own"
            )
        self.kb = kb
        factory = engine_factory if engine_factory is not None else SToPSS
        self._engines: tuple = tuple(
            factory(kb, matcher=matcher, config=config) for _ in range(shards)
        )
        self._router = router if router is not None else default_router
        self._executor, self._owns_executor = _resolve_executor(executor)
        self._engine_factory = factory
        self._matcher_spec = matcher
        #: sub_id -> original subscription (the decode table for wire
        #: match rows, and the restart source for the process plane)
        self._subs_by_id: dict[str, Subscription] = {}
        #: a distributed executor moves publishes off the .map seam and
        #: onto the worker-process data plane (built lazily on first
        #: publish; rebuilt whenever the knowledge base version drifts)
        self._distributed = (
            bool(getattr(self._executor, "distributed", False)) and shards > 1
        )
        self._plane: _ProcessDataPlane | None = None
        self._plane_dirty = False
        #: running count of values that crossed the wire as string
        #: fallbacks instead of interned ids (distributed executor only)
        self._wire_fallbacks = 0
        #: sub_id -> global insertion sequence (the merge-sort key that
        #: restores single-engine reporting order across shards)
        self._seq_of: dict[str, int] = {}
        self._next_seq = 0
        self.publications = 0
        #: cumulative per-shard publish CPU (thread time, so a GIL
        #: interpreter's interleaving does not inflate it)
        self._busy_cpu_seconds = [0.0] * shards
        #: Σ over publications of the slowest shard's publish CPU —
        #: the fan-out's critical path: what wall-clock converges to
        #: when the executor genuinely overlaps shards (>= N cores)
        self._critical_path_seconds = 0.0

    # -- routing -----------------------------------------------------------------

    @property
    def engines(self) -> tuple:
        """The shard replicas, for inspection (index = shard id)."""
        return self._engines

    @property
    def shards(self) -> int:
        return len(self._engines)

    def shard_of(self, sub_id: str) -> int:
        """The shard owning *sub_id* under the active router."""
        return self._router(sub_id, len(self._engines))

    # -- subscription management ---------------------------------------------------

    def subscribe(self, subscription: Subscription) -> Subscription:
        """Route a subscription to its owning shard; returns the root
        form that shard's engine inserted."""
        root = self._engines[self.shard_of(subscription.sub_id)].subscribe(subscription)
        self._seq_of[subscription.sub_id] = self._next_seq
        self._next_seq += 1
        self._subs_by_id[subscription.sub_id] = subscription
        self._forward(self.shard_of(subscription.sub_id), "subscribe", subscription)
        return root

    def unsubscribe(self, sub_id: str) -> Subscription:
        """Remove a subscription from the shard that owns it."""
        if sub_id not in self._seq_of:
            raise UnknownSubscriptionError(f"no subscription {sub_id!r}")
        original = self._engines[self.shard_of(sub_id)].unsubscribe(sub_id)
        del self._seq_of[sub_id]
        del self._subs_by_id[sub_id]
        self._forward(self.shard_of(sub_id), "unsubscribe", sub_id)
        return original

    def _forward(self, index: int | None, op: str, payload) -> None:
        """Mirror a control-plane mutation onto the live worker fleet
        (no-op without one).  The local replicas are the source of
        truth, so any forwarding failure — a dead worker, a knowledge
        base that moved since the fork — discards the plane instead of
        failing the caller's already-applied operation; the next publish
        rebuilds the fleet from local state."""
        if self._plane is None:
            return
        if self._plane_dirty or self._plane.kb_version != self.kb.version:
            self._plane_dirty = True
            return
        try:
            if index is None:
                self._plane.broadcast(op, payload)
            else:
                self._plane.request(index, op, payload)
        except BaseException:
            self._discard_plane()

    def __len__(self) -> int:
        return sum(len(engine) for engine in self._engines)

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._seq_of

    def subscriptions(self) -> Iterator[Subscription]:
        """Original subscriptions in global insertion order."""
        entries = [
            (self._seq_of[subscription.sub_id], subscription)
            for engine in self._engines
            for subscription in engine.subscriptions()
        ]
        entries.sort(key=lambda entry: entry[0])
        for _, subscription in entries:
            yield subscription

    # -- publishing -------------------------------------------------------------------

    def _publish_shard(self, task: tuple[int, Event]) -> tuple[int, list, float]:
        index, event = task
        started = time.thread_time()
        matches = self._engines[index].publish(event)
        return index, matches, time.thread_time() - started

    def publish(self, event: Event) -> list[SemanticMatch]:
        """Fan one publication out across every shard and merge the
        per-shard match sets back into global insertion order.

        Every shard sees every event (any shard's subscriptions may
        match), but each works against its own interest index — an
        empty or uninterested shard prunes the expansion to nearly
        nothing.  Per-shard CPU is measured with thread time so the
        recorded critical path stays meaningful on GIL interpreters.
        """
        self.publications += 1
        if len(self._engines) == 1:
            # degenerate single-shard path: no executor hop, no merge —
            # shard-local insertion order is already the global order.
            started = time.thread_time()
            matches = self._engines[0].publish(event)
            span = time.thread_time() - started
            self._busy_cpu_seconds[0] += span
            self._critical_path_seconds += span
            return matches
        if self._distributed:
            return self._publish_distributed(event)
        tasks = [(index, event) for index in range(len(self._engines))]
        merged: list[SemanticMatch] = []
        slowest = 0.0
        for index, matches, span in self._executor.map(self._publish_shard, tasks):
            merged.extend(matches)
            self._busy_cpu_seconds[index] += span
            slowest = max(slowest, span)
        self._critical_path_seconds += slowest
        seq = self._seq_of
        merged.sort(key=lambda match: seq[match.subscription.sub_id])
        return merged

    def _discard_plane(self) -> None:
        if self._plane is not None:
            plane, self._plane = self._plane, None
            plane.close()
        self._plane_dirty = False

    def _ensure_plane(self) -> _ProcessDataPlane:
        """The live worker fleet, rebuilt from the control plane when
        marked dirty or when the knowledge base version moved since the
        fork (workers hold a fork-time KB copy and cannot observe
        parent mutations — restart *is* the propagation mechanism)."""
        if self._plane is not None and (
            self._plane_dirty or self._plane.kb_version != self.kb.version
        ):
            self._discard_plane()
        if self._plane is None:
            shard_lists: list[list[Subscription]] = [[] for _ in self._engines]
            for sub_id, _ in sorted(self._seq_of.items(), key=lambda item: item[1]):
                shard_lists[self.shard_of(sub_id)].append(self._subs_by_id[sub_id])
            self._plane = _ProcessDataPlane(
                self.kb,
                self._engine_factory,
                self._matcher_spec,
                self._engines[0].config,
                shard_lists,
                start_method=getattr(self._executor, "start_method", None),
                request_timeout=getattr(self._executor, "request_timeout", 120.0),
            )
        return self._plane

    def _publish_distributed(self, event: Event) -> list[SemanticMatch]:
        """The process-executor publish path: encode once, fan the wire
        form out to every worker, decode the per-shard match rows
        against the parent's own table, merge as usual.  Matches carry
        the parent's original subscription and event objects — only the
        derived events cross the boundary."""
        plane = self._ensure_plane()
        table = self.kb.concept_table() if self._engines[0].config.interning else None
        wire = event.to_wire(table)
        self._wire_fallbacks += wire_fallback_count(wire)
        merged: list[SemanticMatch] = []
        slowest = 0.0
        subs = self._subs_by_id
        for index, (derived_wires, rows, span) in enumerate(plane.publish(wire)):
            self._busy_cpu_seconds[index] += span
            slowest = max(slowest, span)
            decoded = [DerivedEvent.from_wire(item, table) for item in derived_wires]
            for sub_id, generality, via_index in rows:
                merged.append(
                    SemanticMatch(subs[sub_id], event, decoded[via_index], generality)
                )
        self._critical_path_seconds += slowest
        seq = self._seq_of
        merged.sort(key=lambda match: seq[match.subscription.sub_id])
        return merged

    def explain(self, event: Event) -> PipelineResult:
        """The full (deliberately exhaustive) expansion — identical on
        every replica, so shard 0 answers for all."""
        return self._engines[0].explain(event)

    # -- mode control / semantic plumbing -------------------------------------------

    @property
    def config(self) -> SemanticConfig:
        return self._engines[0].config

    @property
    def mode(self) -> str:
        return self._engines[0].mode

    def reconfigure(self, config: SemanticConfig) -> None:
        """Switch every shard to *config*.  Each replica's own
        ``reconfigure`` is transactional; if one shard rejects the new
        configuration the already-switched shards are rolled back so
        the fleet never runs split-brain."""
        previous = self._engines[0].config
        switched = []
        try:
            for engine in self._engines:
                engine.reconfigure(config)
                switched.append(engine)
        except BaseException:
            for engine in switched:
                engine.reconfigure(previous)
            raise
        self._forward(None, "reconfigure", config)

    def bump_semantic_epoch(self, reason: str = "external") -> None:
        """Force-invalidate cached semantic state on every shard."""
        for engine in self._engines:
            engine.bump_semantic_epoch(reason)
        self._forward(None, "epoch", reason)

    def refresh(self) -> int:
        """Re-expand stale subscriptions on every shard that supports
        it (the subscription-side design); returns the total count.

        The single engine's ``refresh`` re-subscribes each stale
        subscription, moving it to the *end* of the insertion order; to
        keep sharded reporting order identical, the refreshed ids are
        re-sequenced here in the same global order the single engine
        would process them (its stale list follows subscribe order)."""
        stale = set(self.stale_subscriptions())
        refreshed = sum(
            engine.refresh()
            for engine in self._engines
            if hasattr(engine, "refresh")
        )
        if stale:
            for sub_id, _ in sorted(self._seq_of.items(), key=lambda item: item[1]):
                if sub_id in stale:
                    self._seq_of[sub_id] = self._next_seq
                    self._next_seq += 1
        if refreshed and self._plane is not None:
            # refresh only fires after knowledge-base motion, which the
            # fork-time worker KBs cannot see — rebuild, don't forward.
            self._plane_dirty = True
        return refreshed

    def stale_subscriptions(self) -> list[str]:
        return [
            sub_id
            for engine in self._engines
            if hasattr(engine, "stale_subscriptions")
            for sub_id in engine.stale_subscriptions()
        ]

    @property
    def semantic_version(self) -> tuple:
        """Per-shard semantic versions as one hashable cache key: any
        shard's knowledge-base sync or epoch bump shifts it, so the
        dispatcher's result cache can never serve a match set computed
        under a stale shard."""
        return tuple(engine.semantic_version for engine in self._engines)

    @property
    def subscription_epoch(self) -> tuple:
        """Per-shard churn epochs — any subscribe/unsubscribe anywhere
        shifts the dispatcher's result-cache key."""
        return tuple(engine.subscription_epoch for engine in self._engines)

    # -- reporting ------------------------------------------------------------------

    def sharding_info(self) -> dict[str, object]:
        """Fan-out shape and measured shard-parallel cost."""
        return {
            "shards": len(self._engines),
            "executor": getattr(self._executor, "name", type(self._executor).__name__),
            # resolved per-shard matcher registry names: each replica
            # resolves its own backend from its config, so a numpy
            # preference surfaces here as e.g. "counting-numpy" (or the
            # scalar name where the preference degraded).
            "matchers": [
                getattr(getattr(engine, "matcher", None), "name", "?")
                for engine in self._engines
            ],
            "subscriptions_per_shard": [len(engine) for engine in self._engines],
            "publications": self.publications,
            "busy_cpu_seconds": list(self._busy_cpu_seconds),
            "critical_path_seconds": self._critical_path_seconds,
            # values that crossed to worker processes as string
            # fallbacks instead of interned ids (0 for in-process
            # executors, where nothing crosses a wire at all)
            "wire_fallbacks": self._wire_fallbacks,
        }

    def stats(self) -> dict[str, object]:
        """Aggregate stats in the single-engine shape (counters summed
        across shards via :func:`~repro.metrics.aggregate.merge_stats`)
        plus a ``sharding`` section with the fan-out shape and the
        per-shard snapshots under ``sharding.shard_stats``.

        Under a live process plane the per-shard snapshots come from
        the worker replicas (where the publish work actually ran); the
        local control replicas answer otherwise."""
        per_shard = None
        if (
            self._plane is not None
            and not self._plane_dirty
            and self._plane.kb_version == self.kb.version
        ):
            try:
                per_shard = self._plane.stats()
            except BaseException:
                self._discard_plane()
        if per_shard is None:
            per_shard = [engine.stats() for engine in self._engines]
        merged = merge_stats(per_shard)
        sharding = self.sharding_info()
        sharding["shard_stats"] = per_shard
        merged["sharding"] = sharding
        return merged

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Stop the worker fleet (always engine-owned) and release the
        executor (owned executors only — instances the caller passed in
        are theirs to close)."""
        self._discard_plane()
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedBroker(Broker):
    """A :class:`~repro.broker.broker.Broker` whose engine is a
    :class:`ShardedEngine` — same registration/subscribe/publish API,
    same dispatcher, result cache, and notification fan-out, with the
    matching work partitioned across N replicas.

    >>> from repro.ontology.domains import build_jobs_knowledge_base
    >>> broker = ShardedBroker(build_jobs_knowledge_base(), shards=4)
    >>> company = broker.register_subscriber("Initech", email="hr@initech.example")
    >>> sub = broker.subscribe(company.client_id,
    ...     "(university = Toronto) and (degree = PhD)")
    >>> candidate = broker.register_publisher("Ada")
    >>> report = broker.publish(candidate.client_id,
    ...     "(school, Toronto)(degree, PhD)")
    >>> report.match_count
    1
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        *,
        shards: int = 4,
        matcher: str | MatchingAlgorithm = "counting",
        config: SemanticConfig | None = None,
        transports: TransportRegistry | None = None,
        engine_factory: Callable | None = None,
        executor: object | str = "serial",
        router: Callable[[str, int], int] | None = None,
    ) -> None:
        super().__init__(
            kb,
            matcher=matcher,
            config=config,
            transports=transports,
            engine=ShardedEngine(
                kb,
                shards=shards,
                matcher=matcher,
                config=config,
                engine_factory=engine_factory,
                executor=executor,
                router=router,
            ),
        )

    @property
    def engines(self) -> tuple:
        return self.engine.engines

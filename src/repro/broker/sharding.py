"""Sharded broker: subscription-partitioned engine replicas.

S-ToPSS describes one semantic engine; its companion paper frames the
problem at Internet scale, where later systems (VCube-PS, Topiary)
partition the *subscription population* across workers.  This module is
that scale-out axis: :class:`ShardedEngine` hash-partitions stored
subscriptions across N independent engine replicas that share one
:class:`~repro.ontology.knowledge_base.KnowledgeBase` (and therefore
one version-synced :class:`~repro.ontology.concept_table.ConceptTable`
snapshot — its lazy closure fills are lock-guarded for exactly this
use), fans each publication out across the shards through a pluggable
executor, and merges the per-shard match sets back into the global
subscription insertion order the single-engine design reports.

Why this composes without new invariants: a publication's match set is
a per-subscription minimum, so partitioning subscriptions partitions
the match set exactly — the union over shards *is* the single-engine
result, generality values included (pinned as a hard property test,
``tests/property/test_sharding_equivalence.py``).  Each replica keeps
its own matcher, caches, memos, and
:class:`~repro.core.interest.InterestIndex`, so demand-driven pruning
gets *sharper* per shard: fewer live subscriptions mean smaller
accepted sets and a cheaper per-shard expansion.

Concurrency contract: parallelism is *across shards within one
publication* — the executor maps the shard engines concurrently, and
every structure a shard touches during publish is either replica-local
(matcher, caches, counters, interest index) or a lock-guarded shared
snapshot (the concept table).  The facade itself is not re-entrant:
one ``publish``/``subscribe``/``reconfigure`` at a time, exactly the
discipline the :class:`~repro.broker.dispatcher.EventDispatcher`
already imposes.

Subscription churn routes to the owning shard (the router is a stable
content hash of the subscription id, so unsubscribe finds the same
shard without a lookup table); ``reconfigure``, ``refresh``, and
``bump_semantic_epoch`` route to *every* shard, and knowledge-base
motion needs no routing at all — each replica's publish path already
re-syncs against ``kb.version`` through the existing semantic-version/
epoch plumbing.
"""

from __future__ import annotations

import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, Sequence

from repro.broker.broker import Broker
from repro.broker.transports import TransportRegistry
from repro.core.config import SemanticConfig
from repro.core.engine import SToPSS
from repro.core.pipeline import PipelineResult
from repro.core.provenance import SemanticMatch
from repro.errors import ConfigError, UnknownSubscriptionError
from repro.matching.base import MatchingAlgorithm
from repro.metrics.aggregate import merge_stats
from repro.model.events import Event
from repro.model.subscriptions import Subscription
from repro.ontology.knowledge_base import KnowledgeBase

__all__ = [
    "ShardedBroker",
    "ShardedEngine",
    "SerialExecutor",
    "ThreadedExecutor",
    "default_router",
]


def default_router(sub_id: str, shards: int) -> int:
    """Stable hash routing: CRC-32 of the subscription id modulo the
    shard count.  Deliberately *not* Python's salted ``hash()`` — the
    assignment must be reproducible across processes and runs so
    traces, benchmarks, and a restarted broker agree on ownership."""
    return zlib.crc32(sub_id.encode("utf-8")) % shards


class SerialExecutor:
    """Fan-out executor that runs shard tasks inline, in order.  The
    zero-dependency baseline: same results as the threaded executor,
    wall-clock equal to the summed per-shard cost."""

    name = "serial"

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(item) for item in items]

    def close(self) -> None:
        """Nothing to release."""


class ThreadedExecutor:
    """Fan-out executor backed by a lazily created
    :class:`~concurrent.futures.ThreadPoolExecutor`.

    Shard publish work is pure Python, so on a stock (GIL) interpreter
    threads *interleave* rather than overlap — the wall-clock win
    appears on free-threaded builds or multi-core machines running
    subinterpreter/worker deployments; on one core the measured
    per-shard CPU (``critical_path_seconds`` in the sharding stats) is
    the honest scale-out signal.  See ``docs/PERFORMANCE.md``.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        #: one instance may be borrowed by several engines publishing
        #: from different threads; the lazy pool creation must not race
        #: (a lost ThreadPoolExecutor could never be shut down).
        self._init_lock = threading.Lock()

    def map(self, fn: Callable, items: Sequence) -> list:
        pool = self._pool
        if pool is None:
            with self._init_lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = ThreadPoolExecutor(
                        max_workers=self._max_workers, thread_name_prefix="stopss-shard"
                    )
        return list(pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_EXECUTORS = {
    "serial": SerialExecutor,
    "threads": ThreadedExecutor,
    "threaded": ThreadedExecutor,
}


def _resolve_executor(executor) -> tuple[object, bool]:
    """``(executor, owned)`` — string specs construct a fresh executor
    the engine closes on :meth:`ShardedEngine.close`; instances are
    borrowed and left running."""
    if isinstance(executor, str):
        try:
            return _EXECUTORS[executor](), True
        except KeyError:
            raise ConfigError(
                f"unknown executor {executor!r} (expected one of {sorted(_EXECUTORS)})"
            ) from None
    if not callable(getattr(executor, "map", None)):
        raise ConfigError("executor must provide map(fn, items)")
    return executor, False


class ShardedEngine:
    """N engine replicas behind the single-engine interface.

    Satisfies everything :class:`~repro.broker.dispatcher.
    EventDispatcher` (and therefore :class:`~repro.broker.broker.
    Broker`) needs from an engine — ``subscribe`` / ``unsubscribe`` /
    ``publish`` / ``reconfigure`` / ``subscriptions`` / ``stats`` and
    the ``semantic_version`` / ``subscription_epoch`` cache-key
    properties — so the existing dispatcher, result cache, and
    notification plumbing work unchanged on top of it.

    Parameters
    ----------
    kb:
        The shared knowledge base.  All replicas read the same object
        and the same concept-table snapshot.
    shards:
        Replica count (>= 1).  One shard degenerates to a thin wrapper
        around a plain engine: no executor hop, no merge sort.
    matcher:
        A *registered* matcher name, instantiated once per shard.  A
        :class:`MatchingAlgorithm` instance cannot be shared across
        replicas (its indexes embed one shard's subscriptions), so
        instances are rejected whenever ``shards > 1``.
    engine_factory:
        ``factory(kb, *, matcher=..., config=...) -> engine`` building
        one replica — defaults to :class:`~repro.core.engine.SToPSS`;
        pass :class:`~repro.core.subexpand.SubscriptionExpandingEngine`
        to shard the subscription-side design.
    executor:
        ``"serial"`` (default), ``"threads"``, or any object with
        ``map(fn, items)`` — how the publish fan-out runs.
    router:
        ``router(sub_id, shards) -> shard index`` override; defaults to
        :func:`default_router`.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        *,
        shards: int = 4,
        matcher: str | MatchingAlgorithm = "counting",
        config: SemanticConfig | None = None,
        engine_factory: Callable | None = None,
        executor: object | str = "serial",
        router: Callable[[str, int], int] | None = None,
    ) -> None:
        if shards < 1:
            raise ConfigError("shards must be >= 1")
        if not isinstance(matcher, str) and shards > 1:
            raise ConfigError(
                "a matcher instance cannot back multiple shards; pass a "
                "registered matcher name so each replica gets its own"
            )
        self.kb = kb
        factory = engine_factory if engine_factory is not None else SToPSS
        self._engines: tuple = tuple(
            factory(kb, matcher=matcher, config=config) for _ in range(shards)
        )
        self._router = router if router is not None else default_router
        self._executor, self._owns_executor = _resolve_executor(executor)
        #: sub_id -> global insertion sequence (the merge-sort key that
        #: restores single-engine reporting order across shards)
        self._seq_of: dict[str, int] = {}
        self._next_seq = 0
        self.publications = 0
        #: cumulative per-shard publish CPU (thread time, so a GIL
        #: interpreter's interleaving does not inflate it)
        self._busy_cpu_seconds = [0.0] * shards
        #: Σ over publications of the slowest shard's publish CPU —
        #: the fan-out's critical path: what wall-clock converges to
        #: when the executor genuinely overlaps shards (>= N cores)
        self._critical_path_seconds = 0.0

    # -- routing -----------------------------------------------------------------

    @property
    def engines(self) -> tuple:
        """The shard replicas, for inspection (index = shard id)."""
        return self._engines

    @property
    def shards(self) -> int:
        return len(self._engines)

    def shard_of(self, sub_id: str) -> int:
        """The shard owning *sub_id* under the active router."""
        return self._router(sub_id, len(self._engines))

    # -- subscription management ---------------------------------------------------

    def subscribe(self, subscription: Subscription) -> Subscription:
        """Route a subscription to its owning shard; returns the root
        form that shard's engine inserted."""
        root = self._engines[self.shard_of(subscription.sub_id)].subscribe(subscription)
        self._seq_of[subscription.sub_id] = self._next_seq
        self._next_seq += 1
        return root

    def unsubscribe(self, sub_id: str) -> Subscription:
        """Remove a subscription from the shard that owns it."""
        if sub_id not in self._seq_of:
            raise UnknownSubscriptionError(f"no subscription {sub_id!r}")
        original = self._engines[self.shard_of(sub_id)].unsubscribe(sub_id)
        del self._seq_of[sub_id]
        return original

    def __len__(self) -> int:
        return sum(len(engine) for engine in self._engines)

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._seq_of

    def subscriptions(self) -> Iterator[Subscription]:
        """Original subscriptions in global insertion order."""
        entries = [
            (self._seq_of[subscription.sub_id], subscription)
            for engine in self._engines
            for subscription in engine.subscriptions()
        ]
        entries.sort(key=lambda entry: entry[0])
        for _, subscription in entries:
            yield subscription

    # -- publishing -------------------------------------------------------------------

    def _publish_shard(self, task: tuple[int, Event]) -> tuple[int, list, float]:
        index, event = task
        started = time.thread_time()
        matches = self._engines[index].publish(event)
        return index, matches, time.thread_time() - started

    def publish(self, event: Event) -> list[SemanticMatch]:
        """Fan one publication out across every shard and merge the
        per-shard match sets back into global insertion order.

        Every shard sees every event (any shard's subscriptions may
        match), but each works against its own interest index — an
        empty or uninterested shard prunes the expansion to nearly
        nothing.  Per-shard CPU is measured with thread time so the
        recorded critical path stays meaningful on GIL interpreters.
        """
        self.publications += 1
        if len(self._engines) == 1:
            # degenerate single-shard path: no executor hop, no merge —
            # shard-local insertion order is already the global order.
            started = time.thread_time()
            matches = self._engines[0].publish(event)
            span = time.thread_time() - started
            self._busy_cpu_seconds[0] += span
            self._critical_path_seconds += span
            return matches
        tasks = [(index, event) for index in range(len(self._engines))]
        merged: list[SemanticMatch] = []
        slowest = 0.0
        for index, matches, span in self._executor.map(self._publish_shard, tasks):
            merged.extend(matches)
            self._busy_cpu_seconds[index] += span
            slowest = max(slowest, span)
        self._critical_path_seconds += slowest
        seq = self._seq_of
        merged.sort(key=lambda match: seq[match.subscription.sub_id])
        return merged

    def explain(self, event: Event) -> PipelineResult:
        """The full (deliberately exhaustive) expansion — identical on
        every replica, so shard 0 answers for all."""
        return self._engines[0].explain(event)

    # -- mode control / semantic plumbing -------------------------------------------

    @property
    def config(self) -> SemanticConfig:
        return self._engines[0].config

    @property
    def mode(self) -> str:
        return self._engines[0].mode

    def reconfigure(self, config: SemanticConfig) -> None:
        """Switch every shard to *config*.  Each replica's own
        ``reconfigure`` is transactional; if one shard rejects the new
        configuration the already-switched shards are rolled back so
        the fleet never runs split-brain."""
        previous = self._engines[0].config
        switched = []
        try:
            for engine in self._engines:
                engine.reconfigure(config)
                switched.append(engine)
        except BaseException:
            for engine in switched:
                engine.reconfigure(previous)
            raise

    def bump_semantic_epoch(self, reason: str = "external") -> None:
        """Force-invalidate cached semantic state on every shard."""
        for engine in self._engines:
            engine.bump_semantic_epoch(reason)

    def refresh(self) -> int:
        """Re-expand stale subscriptions on every shard that supports
        it (the subscription-side design); returns the total count.

        The single engine's ``refresh`` re-subscribes each stale
        subscription, moving it to the *end* of the insertion order; to
        keep sharded reporting order identical, the refreshed ids are
        re-sequenced here in the same global order the single engine
        would process them (its stale list follows subscribe order)."""
        stale = set(self.stale_subscriptions())
        refreshed = sum(
            engine.refresh()
            for engine in self._engines
            if hasattr(engine, "refresh")
        )
        if stale:
            for sub_id, _ in sorted(self._seq_of.items(), key=lambda item: item[1]):
                if sub_id in stale:
                    self._seq_of[sub_id] = self._next_seq
                    self._next_seq += 1
        return refreshed

    def stale_subscriptions(self) -> list[str]:
        return [
            sub_id
            for engine in self._engines
            if hasattr(engine, "stale_subscriptions")
            for sub_id in engine.stale_subscriptions()
        ]

    @property
    def semantic_version(self) -> tuple:
        """Per-shard semantic versions as one hashable cache key: any
        shard's knowledge-base sync or epoch bump shifts it, so the
        dispatcher's result cache can never serve a match set computed
        under a stale shard."""
        return tuple(engine.semantic_version for engine in self._engines)

    @property
    def subscription_epoch(self) -> tuple:
        """Per-shard churn epochs — any subscribe/unsubscribe anywhere
        shifts the dispatcher's result-cache key."""
        return tuple(engine.subscription_epoch for engine in self._engines)

    # -- reporting ------------------------------------------------------------------

    def sharding_info(self) -> dict[str, object]:
        """Fan-out shape and measured shard-parallel cost."""
        return {
            "shards": len(self._engines),
            "executor": getattr(self._executor, "name", type(self._executor).__name__),
            # resolved per-shard matcher registry names: each replica
            # resolves its own backend from its config, so a numpy
            # preference surfaces here as e.g. "counting-numpy" (or the
            # scalar name where the preference degraded).
            "matchers": [
                getattr(getattr(engine, "matcher", None), "name", "?")
                for engine in self._engines
            ],
            "subscriptions_per_shard": [len(engine) for engine in self._engines],
            "publications": self.publications,
            "busy_cpu_seconds": list(self._busy_cpu_seconds),
            "critical_path_seconds": self._critical_path_seconds,
        }

    def stats(self) -> dict[str, object]:
        """Aggregate stats in the single-engine shape (counters summed
        across shards via :func:`~repro.metrics.aggregate.merge_stats`)
        plus a ``sharding`` section with the fan-out shape and the
        per-shard snapshots under ``sharding.shard_stats``."""
        per_shard = [engine.stats() for engine in self._engines]
        merged = merge_stats(per_shard)
        sharding = self.sharding_info()
        sharding["shard_stats"] = per_shard
        merged["sharding"] = sharding
        return merged

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Release the executor (owned executors only — instances the
        caller passed in are theirs to close)."""
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedBroker(Broker):
    """A :class:`~repro.broker.broker.Broker` whose engine is a
    :class:`ShardedEngine` — same registration/subscribe/publish API,
    same dispatcher, result cache, and notification fan-out, with the
    matching work partitioned across N replicas.

    >>> from repro.ontology.domains import build_jobs_knowledge_base
    >>> broker = ShardedBroker(build_jobs_knowledge_base(), shards=4)
    >>> company = broker.register_subscriber("Initech", email="hr@initech.example")
    >>> sub = broker.subscribe(company.client_id,
    ...     "(university = Toronto) and (degree = PhD)")
    >>> candidate = broker.register_publisher("Ada")
    >>> report = broker.publish(candidate.client_id,
    ...     "(school, Toronto)(degree, PhD)")
    >>> report.match_count
    1
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        *,
        shards: int = 4,
        matcher: str | MatchingAlgorithm = "counting",
        config: SemanticConfig | None = None,
        transports: TransportRegistry | None = None,
        engine_factory: Callable | None = None,
        executor: object | str = "serial",
        router: Callable[[str, int], int] | None = None,
    ) -> None:
        super().__init__(
            kb,
            matcher=matcher,
            config=config,
            transports=transports,
            engine=ShardedEngine(
                kb,
                shards=shards,
                matcher=matcher,
                config=config,
                engine_factory=engine_factory,
                executor=executor,
                router=router,
            ),
        )

    @property
    def engines(self) -> tuple:
        return self.engine.engines

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "ShardedBroker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

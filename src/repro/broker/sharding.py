"""Sharded broker: subscription-partitioned engine replicas.

S-ToPSS describes one semantic engine; its companion paper frames the
problem at Internet scale, where later systems (VCube-PS, Topiary)
partition the *subscription population* across workers.  This module is
that scale-out axis: :class:`ShardedEngine` hash-partitions stored
subscriptions across N independent engine replicas that share one
:class:`~repro.ontology.knowledge_base.KnowledgeBase` (and therefore
one version-synced :class:`~repro.ontology.concept_table.ConceptTable`
snapshot — its lazy closure fills are lock-guarded for exactly this
use), fans each publication out across the shards through a pluggable
executor, and merges the per-shard match sets back into the global
subscription insertion order the single-engine design reports.

Why this composes without new invariants: a publication's match set is
a per-subscription minimum, so partitioning subscriptions partitions
the match set exactly — the union over shards *is* the single-engine
result, generality values included (pinned as a hard property test,
``tests/property/test_sharding_equivalence.py``).  Each replica keeps
its own matcher, caches, memos, and
:class:`~repro.core.interest.InterestIndex`, so demand-driven pruning
gets *sharper* per shard: fewer live subscriptions mean smaller
accepted sets and a cheaper per-shard expansion.

Concurrency contract: parallelism is *across shards within one
publication* — the executor maps the shard engines concurrently, and
every structure a shard touches during publish is either replica-local
(matcher, caches, counters, interest index) or a lock-guarded shared
snapshot (the concept table).  The facade itself is not re-entrant:
one ``publish``/``subscribe``/``reconfigure`` at a time, exactly the
discipline the :class:`~repro.broker.dispatcher.EventDispatcher`
already imposes.

Subscription churn routes to the owning shard (the router is a stable
content hash of the subscription id, so unsubscribe finds the same
shard without a lookup table); ``reconfigure``, ``refresh``, and
``bump_semantic_epoch`` route to *every* shard, and knowledge-base
motion needs no routing at all — each replica's publish path already
re-syncs against ``kb.version`` through the existing semantic-version/
epoch plumbing.

Three executors ship, one per concurrency regime
(``docs/CONCURRENCY.md`` is the full contract):
:class:`SerialExecutor` runs shards inline;
:class:`ThreadedExecutor` overlaps them on threads (GIL-bound for this
pure-Python work — wall-clock on one interpreter does not improve);
:class:`ProcessExecutor` gives each shard its own worker *process*,
which is where the 4-shard critical-path gain becomes real wall-clock.
Processes cannot share the in-memory replicas, so the distributed path
trades the ``map``-a-closure seam for a data plane: publications cross
as compact interned-id wire tuples
(:meth:`Event.to_wire <repro.model.events.Event.to_wire>`), the
concept table's closure arrays cross *once* as a read-only
shared-memory snapshot (:class:`~repro.ontology.concept_table.
SharedClosureSnapshot`), and match results come back as wire tuples
the parent decodes against its own table.  The parent keeps its local
replicas as the control plane — the routing/ordering source of truth
that also lets the fleet be rebuilt from scratch whenever the
knowledge base moves (forked workers never see parent KB mutations).

Because the fleet is a disposable cache of the control plane, worker
failure is never fatal: the data plane runs under a supervisor
(:mod:`repro.broker.supervision`, prose in ``docs/RESILIENCE.md``)
that tracks liveness on every round-trip, respawns dead or hung
workers from the parent replicas, retries in-flight publishes with
bounded seeded backoff, and — once a shard's circuit breaker opens —
routes that shard's publishes inline through its parent replica until
a cooldown re-arms the breaker.  Every request/reply crossing a pipe
is epoch-tagged so an abandoned reply (a timed-out op, an engine error
raised mid-broadcast) can never desynchronize a later round-trip: stale
epochs are discarded on read.  A seeded
:class:`~repro.broker.supervision.FaultPlan` injects deterministic
worker failures for the chaos leg of the equivalence suite, the
chaos-soak CI job, and ``stopss demo --chaos``.
"""

from __future__ import annotations

import multiprocessing
import random
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, Sequence

from repro.broker.broker import Broker
from repro.broker.supervision import (
    CircuitBreaker,
    FaultPlan,
    SupervisionPolicy,
    SupervisionStats,
)
from repro.broker.transports import TransportRegistry
from repro.core.config import SemanticConfig
from repro.core.engine import SToPSS
from repro.core.pipeline import PipelineResult
from repro.core.provenance import DerivedEvent, SemanticMatch
from repro.errors import BrokerError, ConfigError, UnknownSubscriptionError
from repro.matching.base import MatchingAlgorithm
from repro.metrics.aggregate import merge_stats, stats_from_wire
from repro.model.events import Event, wire_fallback_count
from repro.model.subscriptions import Subscription
from repro.ontology.concept_table import SharedClosureSnapshot
from repro.ontology.knowledge_base import KnowledgeBase

__all__ = [
    "DEFAULT_REQUEST_TIMEOUT",
    "ShardedBroker",
    "ShardedEngine",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "default_router",
]

#: default bound on one worker round-trip before the shard is presumed
#: hung and respawned; override end to end via
#: ``ShardedEngine(request_timeout=...)``, ``ProcessExecutor(
#: request_timeout=...)``, or ``stopss demo --shard-timeout``.
DEFAULT_REQUEST_TIMEOUT = 120.0


def default_router(sub_id: str, shards: int) -> int:
    """Stable hash routing: CRC-32 of the subscription id modulo the
    shard count.  Deliberately *not* Python's salted ``hash()`` — the
    assignment must be reproducible across processes and runs so
    traces, benchmarks, and a restarted broker agree on ownership."""
    return zlib.crc32(sub_id.encode("utf-8")) % shards


class SerialExecutor:
    """Fan-out executor that runs shard tasks inline, in order.  The
    zero-dependency baseline: same results as the threaded executor,
    wall-clock equal to the summed per-shard cost."""

    name = "serial"

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(item) for item in items]

    def close(self) -> None:
        """Nothing to release."""


class ThreadedExecutor:
    """Fan-out executor backed by a lazily created
    :class:`~concurrent.futures.ThreadPoolExecutor`.

    Shard publish work is pure Python, so on a stock (GIL) interpreter
    threads *interleave* rather than overlap — the wall-clock win
    appears on free-threaded builds or multi-core machines running
    subinterpreter/worker deployments; on one core the measured
    per-shard CPU (``critical_path_seconds`` in the sharding stats) is
    the honest scale-out signal.  See ``docs/PERFORMANCE.md``.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        #: one instance may be borrowed by several engines publishing
        #: from different threads; the lazy pool creation must not race
        #: (a lost ThreadPoolExecutor could never be shut down).
        self._init_lock = threading.Lock()

    def map(self, fn: Callable, items: Sequence) -> list:
        pool = self._pool
        if pool is None:
            with self._init_lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = ThreadPoolExecutor(
                        max_workers=self._max_workers, thread_name_prefix="stopss-shard"
                    )
        return list(pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor:
    """Fan-out executor that runs each shard replica in its own worker
    *process* — the executor that actually breaks the GIL, turning the
    measured per-shard critical path into wall-clock on >= N cores.

    Worker processes cannot call the engine's bound ``_publish_shard``
    closure, so :class:`ShardedEngine` detects the ``distributed``
    marker and routes its traffic through a wire-codec data plane
    (:class:`_ProcessDataPlane`) instead of ``map``; ``map`` itself
    only serves third-party callers and runs inline.  The engine owns
    the worker fleet and tears it down on ``close()`` whether or not it
    owns this executor object.

    ``start_method`` defaults to ``"fork"`` where available (workers
    inherit the knowledge base without pickling, so KBs carrying
    arbitrary mapping functions work); ``"spawn"`` requires the KB,
    engine factory, and matcher spec to be picklable.  One instance
    configures one engine's fleet at a time.
    """

    name = "process"
    #: tells ShardedEngine to run its cross-process data plane
    distributed = True

    def __init__(
        self,
        start_method: str | None = None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else None
        self.start_method = start_method
        self.request_timeout = request_timeout

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(item) for item in items]

    def close(self) -> None:
        """Nothing to release here — worker processes belong to the
        engine's data plane, which the engine closes."""


class _ShardFault(BrokerError):
    """Internal: one shard round-trip failed at the *transport* layer
    (dead worker, timeout, broken pipe, rejected wire payload) — the
    supervised paths catch this and recover; engine-level errors raised
    by the worker's replica propagate unwrapped, exactly as the
    single-engine path would raise them.

    ``respawn`` says whether the worker must be replaced (death,
    timeout) or is still healthy and merely missed one exchange (a
    dropped reply, a corrupted payload it rejected)."""

    def __init__(self, message: str, *, respawn: bool) -> None:
        super().__init__(message)
        self.respawn = respawn


#: what the ``corrupt`` fault kind puts on the wire instead of the real
#: publish payload — anything ``Event.from_wire`` must reject; the
#: worker answers ``badwire`` and the parent retries the clean payload.
_CORRUPT_WIRE = "\x00corrupted-wire\x00"


def _send_error(conn, epoch, exc: BaseException) -> None:
    """Ship a worker-side failure to the parent, preserving the original
    exception when it pickles (so the parent re-raises the same type the
    single-engine path would) and degrading to a string otherwise."""
    try:
        conn.send((epoch, "err", exc))
    except Exception:
        try:
            conn.send((epoch, "err", f"{type(exc).__name__}: {exc}"))
        except Exception:  # parent is gone; nothing left to report to
            pass


def _worker_publish(engine, event, table) -> tuple:
    """One publication inside a shard worker: publish, encode.

    The reply deduplicates derived events — many matches share one
    ``matched_via`` — as ``(derived wire tuples, (sub_id, generality,
    derived index) rows, publish thread-CPU span)``."""
    started = time.thread_time()
    matches = engine.publish(event)
    span = time.thread_time() - started
    derived_wires: list = []
    index_of: dict[int, int] = {}
    rows = []
    for match in matches:
        key = id(match.matched_via)
        via_index = index_of.get(key)
        if via_index is None:
            via_index = index_of[key] = len(derived_wires)
            derived_wires.append(match.matched_via.to_wire(table))
        rows.append((match.subscription.sub_id, match.generality, via_index))
    return tuple(derived_wires), rows, span


def _shard_worker_main(
    conn, kb, factory, matcher, config, subscriptions, snapshot_descriptor, ready_epoch
) -> None:
    """Entry point of one shard worker process.

    Builds the replica engine (adopting the parent's shared-memory
    closure snapshot when it still matches this KB version), subscribes
    the shard's originals in global insertion order, acknowledges
    readiness, then serves the request/reply loop until ``stop`` or a
    closed pipe.

    Every exchange is epoch-tagged: requests arrive as ``(epoch, op,
    payload)`` and are answered with the same epoch — ``(epoch, "ok",
    payload)``, ``(epoch, "err", exception-or-text)`` for an engine
    error (the worker never dies on one, only on a broken parent), or
    ``(epoch, "badwire", text)`` when a publish payload would not even
    decode (transport damage, retriable with a clean payload).  The
    parent discards replies whose epoch it is no longer waiting for, so
    an abandoned reply can never satisfy a later request."""
    snapshot = None
    adopted = False
    try:
        if snapshot_descriptor is not None:
            try:
                snapshot = SharedClosureSnapshot.attach(snapshot_descriptor)
                kb.concept_table().adopt_snapshot(snapshot)
                adopted = True
            except Exception:
                # the snapshot is an optimization, never a correctness
                # dependency: on any mismatch fall back to local fills.
                if snapshot is not None:
                    snapshot.close()
                snapshot = None
        engine = factory(kb, matcher=matcher, config=config)
        for subscription in subscriptions:
            engine.subscribe(subscription)
    except BaseException as exc:
        _send_error(conn, ready_epoch, exc)
        conn.close()
        return
    conn.send((ready_epoch, "ok", {"snapshot_adopted": adopted}))
    try:
        while True:
            try:
                epoch, op, payload = conn.recv()
            except (EOFError, OSError):
                break
            if op == "stop":
                conn.send((epoch, "ok", None))
                break
            try:
                if op == "publish":
                    table = kb.concept_table() if engine.config.interning else None
                    try:
                        event = Event.from_wire(payload, table)
                    except Exception as exc:
                        conn.send((epoch, "badwire", f"{type(exc).__name__}: {exc}"))
                        continue
                    conn.send((epoch, "ok", _worker_publish(engine, event, table)))
                elif op == "subscribe":
                    engine.subscribe(payload)
                    conn.send((epoch, "ok", None))
                elif op == "unsubscribe":
                    engine.unsubscribe(payload)
                    conn.send((epoch, "ok", None))
                elif op == "reconfigure":
                    engine.reconfigure(payload)
                    conn.send((epoch, "ok", None))
                elif op == "epoch":
                    engine.bump_semantic_epoch(payload)
                    conn.send((epoch, "ok", None))
                elif op == "refresh":
                    refreshed = engine.refresh() if hasattr(engine, "refresh") else 0
                    conn.send((epoch, "ok", refreshed))
                elif op == "stats":
                    conn.send((epoch, "ok", engine.stats()))
                else:
                    conn.send((epoch, "err", f"unknown op {op!r}"))
            except BaseException as exc:
                _send_error(conn, epoch, exc)
    finally:
        if snapshot is not None:
            snapshot.close()
        conn.close()


class _ProcessDataPlane:
    """The worker-process fleet behind a distributed executor: one
    daemon process per shard, a duplex pipe each, and one shared-memory
    closure snapshot (see the module docstring for the design).

    The plane is a disposable cache of the parent's control plane: the
    parent rebuilds it from its local replicas whenever the knowledge
    base version drifts (forked workers cannot observe parent KB
    mutations), so every operation here may assume a version-stable
    world.

    Within one plane's lifetime the same disposability makes worker
    failure recoverable *per shard*: *replica_spec* hands back the
    parent's current per-shard state on demand, so a dead, hung, or
    desynchronized worker is respawned alone (``respawn is the retry``
    for control traffic — the rebuilt state already includes every
    applied mutation, so control ops are never re-sent).  Publishes are
    retried under *policy* with bounded seeded backoff; a shard whose
    circuit breaker is open answers ``None`` from :meth:`publish` and
    the engine publishes inline on its parent replica instead.  All
    recovery counters accumulate into the engine-owned *stats* so they
    survive plane rebuilds."""

    def __init__(
        self,
        kb,
        factory,
        matcher,
        config,
        replica_spec,
        *,
        shards: int,
        start_method=None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        policy: SupervisionPolicy | None = None,
        stats: SupervisionStats | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self._kb = kb
        self.kb_version = kb.version
        self._factory = factory
        self._matcher = matcher
        self._replica_spec = replica_spec
        self.request_timeout = request_timeout
        self._policy = policy if policy is not None else SupervisionPolicy()
        self._stats = stats if stats is not None else SupervisionStats()
        self._fault_plan = fault_plan
        self._rng = random.Random(self._policy.seed)
        self._breakers = [
            CircuitBreaker(self._policy.breaker_threshold, self._policy.breaker_cooldown)
            for _ in range(shards)
        ]
        self._closed = False
        self._snapshot = None
        self._descriptor = None
        if config.interning:
            try:
                table = kb.concept_table()
                # the parent never publishes locally under this plane, so
                # its ancestor closures would stay cold; warm them once
                # here so the snapshot carries the whole value-term space
                # (descent closures were already warmed by subscribe-time
                # expansion wherever the engine design uses them).
                table.warm_closures(up=True)
                self._snapshot = table.export_shared()
                self._descriptor = self._snapshot.descriptor()
            except Exception:
                # no shared memory on this platform: workers re-derive.
                if self._snapshot is not None:
                    self._snapshot.close()
                    self._snapshot.unlink()
                self._snapshot = None
                self._descriptor = None
        self._context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        #: shard index -> (process, conn), or None where the worker is
        #: dead and not yet respawned (the list length never changes)
        self._workers: list = [None] * shards
        #: the reply epoch each shard's next read must match; anything
        #: older is an abandoned reply and is discarded on sight
        self._expected = [0] * shards
        self._deadlines = [0.0] * shards
        #: per-shard send counter — the FaultPlan's op axis
        self._op_counts = [0] * shards
        #: a stale worker is alive but may have missed control traffic
        #: (skipped while its breaker was open, or an ambiguous control
        #: failure) — it must be respawned before serving anything
        self._stale = [False] * shards
        self._corrupt_next_descriptor = [False] * shards
        try:
            for index in range(shards):
                self._launch(index, self._descriptor)
            for index in range(shards):
                self._await_ready(index)
        except BaseException:
            self.close()
            raise

    @property
    def workers(self) -> int:
        return len(self._workers)

    @property
    def breaker_states(self) -> list[str]:
        return [breaker.state for breaker in self._breakers]

    # -- worker lifecycle --------------------------------------------------------

    def _fresh_epoch(self, index: int) -> int:
        epoch = self._expected[index] + 1
        self._expected[index] = epoch
        return epoch

    def _launch(self, index: int, descriptor) -> None:
        config, subscriptions = self._replica_spec(index)
        epoch = self._fresh_epoch(index)
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                self._kb,
                self._factory,
                self._matcher,
                config,
                list(subscriptions),
                descriptor,
                epoch,
            ),
            daemon=True,
            name=f"stopss-shard-{index}",
        )
        process.start()
        child_conn.close()
        self._workers[index] = (process, parent_conn)
        self._deadlines[index] = time.monotonic() + self.request_timeout

    def _await_ready(self, index: int) -> None:
        payload = self._finish(index)
        adopted = bool(payload.get("snapshot_adopted")) if isinstance(payload, dict) else False
        if self._descriptor is not None and not adopted:
            # the segment exists but this worker could not adopt it —
            # it came up on local closure fills (correct, just colder)
            self._stats.snapshot_fallbacks += 1

    def _dispose_worker(self, index: int) -> None:
        """Forget shard *index*'s worker: close the pipe, make sure the
        process is gone.  The slot stays None until a respawn."""
        entry = self._workers[index]
        if entry is None:
            return
        self._workers[index] = None
        self._stale[index] = False
        process, conn = entry
        try:
            conn.close()
        except OSError:
            pass
        if process.is_alive():
            process.kill()
        process.join(timeout=5.0)

    def _respawn(self, index: int) -> None:
        """Replace shard *index*'s worker with a fresh one rebuilt from
        the parent's current replica state (config and subscriptions
        included — this is also how a stale worker resyncs)."""
        started = time.monotonic()
        self._dispose_worker(index)
        descriptor = self._descriptor
        if descriptor is not None and self._corrupt_next_descriptor[index]:
            # the "snapshot" fault: hand the replacement a descriptor at
            # an impossible KB version so adoption fails and the worker
            # proves the local-fill fallback path
            descriptor = dict(descriptor)
            descriptor["version"] = -1
        self._corrupt_next_descriptor[index] = False
        try:
            self._launch(index, descriptor)
            self._await_ready(index)
        except BaseException as exc:
            self._dispose_worker(index)
            raise _ShardFault(
                f"shard {index} respawn failed: {exc}", respawn=False
            ) from exc
        self._stats.worker_restarts += 1
        self._stats.restart_seconds += time.monotonic() - started

    # -- the epoch-tagged round-trip ---------------------------------------------

    def _begin(self, index: int, op: str, payload=None) -> None:
        """Send one request to shard *index*, injecting any fault the
        plan scheduled for this send.  Raises :class:`_ShardFault` when
        the send itself failed (or a fault made it fail)."""
        entry = self._workers[index]
        if entry is None:
            raise _ShardFault(f"shard {index} has no live worker", respawn=False)
        process, conn = entry
        slot = self._op_counts[index]
        self._op_counts[index] += 1
        kind = self._fault_plan.take(index, slot) if self._fault_plan is not None else None
        epoch = self._fresh_epoch(index)
        self._deadlines[index] = time.monotonic() + self.request_timeout
        if kind in ("kill", "snapshot"):
            if kind == "snapshot":
                self._corrupt_next_descriptor[index] = True
            process.kill()
            process.join(timeout=5.0)
            raise _ShardFault(
                f"shard {index} worker killed by fault plan", respawn=True
            )
        wire_payload = payload
        if kind == "corrupt" and op == "publish":
            wire_payload = _CORRUPT_WIRE
        try:
            conn.send((epoch, op, wire_payload))
        except (OSError, ValueError) as exc:
            raise _ShardFault(
                f"shard {index} pipe send failed: {exc}", respawn=True
            ) from exc
        if kind == "hang":
            # simulate a hung worker deterministically: the reply may
            # well arrive, but the deadline expires first and the read
            # path must take the timeout -> respawn branch
            self._deadlines[index] = time.monotonic()
        elif kind == "drop":
            # abandon the reply unread; the retry's fresh epoch makes
            # the stale reply discardable instead of a protocol desync
            raise _ShardFault(
                f"shard {index} reply dropped by fault plan", respawn=False
            )

    def _finish(self, index: int):
        """Collect shard *index*'s reply for the epoch :meth:`_begin`
        registered, discarding abandoned replies from earlier epochs.
        Transport trouble raises :class:`_ShardFault`; a worker-side
        engine error re-raises as the original exception."""
        entry = self._workers[index]
        if entry is None:
            raise _ShardFault(f"shard {index} has no live worker", respawn=False)
        process, conn = entry
        expected = self._expected[index]
        deadline = self._deadlines[index]
        while True:
            # deadline first: an injected "hang" sets it to *now* and
            # must reach this branch even when the real reply is already
            # waiting in the pipe
            if time.monotonic() >= deadline:
                raise _ShardFault(
                    f"shard worker {process.name} did not answer within "
                    f"{self.request_timeout:.0f}s",
                    respawn=True,
                )
            if not conn.poll(0.05):
                if not process.is_alive():
                    raise _ShardFault(
                        f"shard worker {process.name} died "
                        f"(exit code {process.exitcode})",
                        respawn=True,
                    )
                continue
            try:
                epoch, status, payload = conn.recv()
            except (EOFError, OSError) as exc:
                raise _ShardFault(
                    f"shard worker {process.name} hung up: {exc}", respawn=True
                ) from exc
            if epoch != expected:
                self._stats.stale_replies_discarded += 1
                continue
            if status == "ok":
                return payload
            if status == "badwire":
                raise _ShardFault(
                    f"shard {index} rejected wire payload: {payload}", respawn=False
                )
            if isinstance(payload, BaseException):
                raise payload
            raise BrokerError(f"shard worker {process.name} failed: {payload}")

    def _record_failure(self, index: int) -> None:
        if self._breakers[index].record_failure():
            self._stats.breaker_opens += 1

    # -- supervised operations ----------------------------------------------------

    def _usable_fast(self, index: int) -> bool:
        """May this shard take the concurrent fast path?  Requires a
        live, in-sync worker and a *closed* breaker — open and half-open
        shards go through the serial supervised path so probe failures
        stay contained."""
        return (
            self._workers[index] is not None
            and not self._stale[index]
            and self._breakers[index].state == "closed"
        )

    def publish(self, wire) -> list:
        """Fan one encoded publication across the fleet; the result has
        one outcome slot per shard, ``None`` meaning the shard degraded
        and the caller must publish inline on its parent replica.

        Phase one is the concurrent fast path: send to every healthy
        closed-breaker shard, then collect the replies.  Any shard that
        failed — plus every shard the fast path skipped — goes through
        the serial supervised path (respawn, bounded backoff retries,
        breaker bookkeeping).  Under supervision no outcome is ever an
        exception for *transport* reasons; worker-side engine errors
        propagate exactly as the single-engine publish would raise
        them."""
        shards = len(self._workers)
        outcomes = [None] * shards
        deferred: list[int] = []  # skipped by the fast path; no attempt made yet
        failed: list[int] = []  # fast-path attempt failed; counts against retries
        sent: list[int] = []
        for index in range(shards):
            if not self._usable_fast(index):
                deferred.append(index)
                continue
            try:
                self._begin(index, "publish", wire)
            except _ShardFault as fault:
                self._record_failure(index)
                if fault.respawn:
                    self._dispose_worker(index)
                failed.append(index)
            else:
                sent.append(index)
        for index in sent:
            try:
                outcomes[index] = self._finish(index)
            except _ShardFault as fault:
                self._record_failure(index)
                if fault.respawn:
                    self._dispose_worker(index)
                failed.append(index)
            else:
                self._breakers[index].record_success()
        for index in failed:
            outcomes[index] = self._supervised_publish(index, wire, attempts=1)
        for index in deferred:
            outcomes[index] = self._supervised_publish(index, wire)
        return outcomes

    def _supervised_publish(self, index: int, wire, attempts: int = 0):
        """Drive one shard's publish to a terminal outcome: a result,
        or ``None`` (degrade to the parent replica) once the retry
        budget is spent or the breaker refuses.  *attempts* counts
        failed attempts already made on this publication."""
        breaker = self._breakers[index]
        policy = self._policy
        while True:
            if attempts:
                if attempts > policy.max_retries or not breaker.allow():
                    self._stats.degraded_publishes += 1
                    return None
                self._stats.publish_retries += 1
                delay = policy.backoff_delay(attempts, self._rng)
                if delay:
                    time.sleep(delay)
            elif not breaker.allow():
                self._stats.degraded_publishes += 1
                return None
            try:
                if self._workers[index] is None or self._stale[index]:
                    self._respawn(index)
                self._begin(index, "publish", wire)
                result = self._finish(index)
            except _ShardFault as fault:
                self._record_failure(index)
                if fault.respawn:
                    self._dispose_worker(index)
                attempts += 1
                continue
            breaker.record_success()
            return result

    def forward(self, index: int | None, op: str, payload=None) -> None:
        """Mirror a control-plane mutation onto the fleet (*index*
        ``None`` broadcasts).  The parent's local replicas are the
        source of truth and have already applied it, so this never
        raises for transport trouble — and control ops are never re-sent
        after a failure: the worker is disposed or marked stale, and the
        respawn's full state rebuild *is* the retry (re-sending could
        double-apply a mutation the worker did receive)."""
        targets = range(len(self._workers)) if index is None else (index,)
        for i in targets:
            self._forward_one(i, op, payload)

    def _forward_one(self, index: int, op: str, payload) -> None:
        if self._workers[index] is None or self._stale[index]:
            return  # the next respawn rebuilds state that includes this op
        if not self._breakers[index].allow():
            # breaker open: no worker traffic at all; the worker missed
            # this mutation, so it must resync before serving again
            self._stale[index] = True
            return
        try:
            self._begin(index, op, payload)
            self._finish(index)
        except _ShardFault as fault:
            self._record_failure(index)
            if fault.respawn:
                self._dispose_worker(index)
            else:
                self._stale[index] = True
            return
        except BaseException:
            # the worker's replica rejected a mutation the parent
            # applied — its state is now unknowable; resync via respawn
            self._stale[index] = True
            return
        self._breakers[index].record_success()

    def request(self, index: int, op: str, payload=None):
        """One unsupervised round-trip with a single shard worker
        (diagnostics and tests; the supervised paths above are the
        production surface)."""
        self._begin(index, op, payload)
        return self._finish(index)

    def broadcast(self, op: str, payload=None) -> list:
        """Unsupervised serial round-trip with every worker."""
        return [self.request(index, op, payload) for index in range(len(self._workers))]

    def stats(self) -> list:
        """Per-shard stats snapshots from the worker replicas, with
        ``None`` holes for shards that currently have no serviceable
        worker (the engine fills those from its local replicas)."""
        results: list = []
        for index in range(len(self._workers)):
            snapshot = None
            if self._usable_fast(index):
                try:
                    self._begin(index, "stats")
                    snapshot = self._finish(index)
                except _ShardFault as fault:
                    self._record_failure(index)
                    if fault.respawn:
                        self._dispose_worker(index)
                    else:
                        self._stale[index] = True
            results.append(
                stats_from_wire(snapshot) if snapshot is not None else None
            )
        return results

    def close(self) -> None:
        """Stop and reap every worker, then destroy the shared segment.
        Idempotent, and tolerant of already-dead workers and half-built
        fleets — exactly one unlink however the plane dies."""
        if self._closed:
            return
        self._closed = True
        workers, self._workers = list(self._workers), []
        for index, entry in enumerate(workers):
            if entry is None:
                continue
            _, conn = entry
            try:
                conn.send((self._expected[index] + 1, "stop", None))
            except (OSError, ValueError):
                pass
        for entry in workers:
            if entry is None:
                continue
            process, conn = entry
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        if self._snapshot is not None:
            self._snapshot.close()
            self._snapshot.unlink()
            self._snapshot = None


_EXECUTORS = {
    "serial": SerialExecutor,
    "threads": ThreadedExecutor,
    "threaded": ThreadedExecutor,
    "process": ProcessExecutor,
    "processes": ProcessExecutor,
}


def _resolve_executor(executor) -> tuple[object, bool]:
    """``(executor, owned)`` — string specs construct a fresh executor
    the engine closes on :meth:`ShardedEngine.close`; instances are
    borrowed and left running."""
    if isinstance(executor, str):
        try:
            return _EXECUTORS[executor](), True
        except KeyError:
            raise ConfigError(
                f"unknown executor {executor!r} (expected one of {sorted(_EXECUTORS)})"
            ) from None
    if not callable(getattr(executor, "map", None)):
        raise ConfigError("executor must provide map(fn, items)")
    return executor, False


class ShardedEngine:
    """N engine replicas behind the single-engine interface.

    Satisfies everything :class:`~repro.broker.dispatcher.
    EventDispatcher` (and therefore :class:`~repro.broker.broker.
    Broker`) needs from an engine — ``subscribe`` / ``unsubscribe`` /
    ``publish`` / ``reconfigure`` / ``subscriptions`` / ``stats`` and
    the ``semantic_version`` / ``subscription_epoch`` cache-key
    properties — so the existing dispatcher, result cache, and
    notification plumbing work unchanged on top of it.

    Parameters
    ----------
    kb:
        The shared knowledge base.  All replicas read the same object
        and the same concept-table snapshot.
    shards:
        Replica count (>= 1).  One shard degenerates to a thin wrapper
        around a plain engine: no executor hop, no merge sort.
    matcher:
        A *registered* matcher name, instantiated once per shard.  A
        :class:`MatchingAlgorithm` instance cannot be shared across
        replicas (its indexes embed one shard's subscriptions), so
        instances are rejected whenever ``shards > 1``.
    engine_factory:
        ``factory(kb, *, matcher=..., config=...) -> engine`` building
        one replica — defaults to :class:`~repro.core.engine.SToPSS`;
        pass :class:`~repro.core.subexpand.SubscriptionExpandingEngine`
        to shard the subscription-side design.
    executor:
        ``"serial"`` (default), ``"threads"``, ``"process"``, or any
        object with ``map(fn, items)`` — how the publish fan-out runs.
        An executor whose ``distributed`` attribute is true routes
        publishes through the worker-process data plane instead of
        ``map`` (see :class:`ProcessExecutor`).
    router:
        ``router(sub_id, shards) -> shard index`` override; defaults to
        :func:`default_router`.
    request_timeout:
        Bound (seconds) on one worker round-trip before the shard is
        presumed hung and respawned.  Defaults to the executor's
        ``request_timeout`` attribute when it has one, else
        :data:`DEFAULT_REQUEST_TIMEOUT`.  CLI: ``--shard-timeout``.
    supervision:
        :class:`~repro.broker.supervision.SupervisionPolicy` governing
        worker respawn, publish retry/backoff, and the per-shard
        circuit breakers of the process data plane (defaults apply when
        omitted; irrelevant to in-process executors).
    fault_plan:
        Optional :class:`~repro.broker.supervision.FaultPlan` injecting
        deterministic worker faults into the data plane — tests, chaos
        benchmarks, and ``stopss demo --chaos`` only.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        *,
        shards: int = 4,
        matcher: str | MatchingAlgorithm = "counting",
        config: SemanticConfig | None = None,
        engine_factory: Callable | None = None,
        executor: object | str = "serial",
        router: Callable[[str, int], int] | None = None,
        request_timeout: float | None = None,
        supervision: SupervisionPolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if shards < 1:
            raise ConfigError("shards must be >= 1")
        if not isinstance(matcher, str) and shards > 1:
            raise ConfigError(
                "a matcher instance cannot back multiple shards; pass a "
                "registered matcher name so each replica gets its own"
            )
        self.kb = kb
        factory = engine_factory if engine_factory is not None else SToPSS
        self._engines: tuple = tuple(
            factory(kb, matcher=matcher, config=config) for _ in range(shards)
        )
        self._router = router if router is not None else default_router
        self._executor, self._owns_executor = _resolve_executor(executor)
        self._engine_factory = factory
        self._matcher_spec = matcher
        #: sub_id -> original subscription (the decode table for wire
        #: match rows, and the restart source for the process plane)
        self._subs_by_id: dict[str, Subscription] = {}
        #: a distributed executor moves publishes off the .map seam and
        #: onto the worker-process data plane (built lazily on first
        #: publish; rebuilt whenever the knowledge base version drifts)
        self._distributed = (
            bool(getattr(self._executor, "distributed", False)) and shards > 1
        )
        self._plane: _ProcessDataPlane | None = None
        self._plane_dirty = False
        if request_timeout is None:
            request_timeout = getattr(self._executor, "request_timeout", None)
        if request_timeout is None:
            request_timeout = DEFAULT_REQUEST_TIMEOUT
        if request_timeout <= 0:
            raise ConfigError("request_timeout must be > 0")
        self._request_timeout = float(request_timeout)
        self._supervision_policy = (
            supervision if supervision is not None else SupervisionPolicy()
        )
        #: engine-owned recovery counters: the plane is disposable (KB
        #: drift discards it) but its supervision history is not
        self._supervision = SupervisionStats()
        self._fault_plan = fault_plan
        #: running count of values that crossed the wire as string
        #: fallbacks instead of interned ids (distributed executor only)
        self._wire_fallbacks = 0
        #: sub_id -> global insertion sequence (the merge-sort key that
        #: restores single-engine reporting order across shards)
        self._seq_of: dict[str, int] = {}
        self._next_seq = 0
        self.publications = 0
        #: cumulative per-shard publish CPU (thread time, so a GIL
        #: interpreter's interleaving does not inflate it)
        self._busy_cpu_seconds = [0.0] * shards
        #: Σ over publications of the slowest shard's publish CPU —
        #: the fan-out's critical path: what wall-clock converges to
        #: when the executor genuinely overlaps shards (>= N cores)
        self._critical_path_seconds = 0.0

    # -- routing -----------------------------------------------------------------

    @property
    def engines(self) -> tuple:
        """The shard replicas, for inspection (index = shard id)."""
        return self._engines

    @property
    def shards(self) -> int:
        return len(self._engines)

    def shard_of(self, sub_id: str) -> int:
        """The shard owning *sub_id* under the active router."""
        return self._router(sub_id, len(self._engines))

    # -- subscription management ---------------------------------------------------

    def subscribe(self, subscription: Subscription) -> Subscription:
        """Route a subscription to its owning shard; returns the root
        form that shard's engine inserted."""
        root = self._engines[self.shard_of(subscription.sub_id)].subscribe(subscription)
        self._seq_of[subscription.sub_id] = self._next_seq
        self._next_seq += 1
        self._subs_by_id[subscription.sub_id] = subscription
        self._forward(self.shard_of(subscription.sub_id), "subscribe", subscription)
        return root

    def unsubscribe(self, sub_id: str) -> Subscription:
        """Remove a subscription from the shard that owns it."""
        if sub_id not in self._seq_of:
            raise UnknownSubscriptionError(f"no subscription {sub_id!r}")
        original = self._engines[self.shard_of(sub_id)].unsubscribe(sub_id)
        del self._seq_of[sub_id]
        del self._subs_by_id[sub_id]
        self._forward(self.shard_of(sub_id), "unsubscribe", sub_id)
        return original

    def _forward(self, index: int | None, op: str, payload) -> None:
        """Mirror a control-plane mutation onto the live worker fleet
        (no-op without one).  The local replicas are the source of
        truth, so forwarding can never fail the caller's already-applied
        operation: a knowledge base that moved since the fork marks the
        whole plane dirty (next publish rebuilds it), and per-worker
        trouble is the plane supervisor's problem — it disposes or
        stale-marks the one affected worker and respawns it on next
        use, leaving the healthy shards' workers warm."""
        if self._plane is None:
            return
        if self._plane_dirty or self._plane.kb_version != self.kb.version:
            self._plane_dirty = True
            return
        self._plane.forward(index, op, payload)

    def __len__(self) -> int:
        return sum(len(engine) for engine in self._engines)

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._seq_of

    def subscriptions(self) -> Iterator[Subscription]:
        """Original subscriptions in global insertion order."""
        entries = [
            (self._seq_of[subscription.sub_id], subscription)
            for engine in self._engines
            for subscription in engine.subscriptions()
        ]
        entries.sort(key=lambda entry: entry[0])
        for _, subscription in entries:
            yield subscription

    # -- publishing -------------------------------------------------------------------

    def _publish_shard(self, task: tuple[int, Event]) -> tuple[int, list, float]:
        index, event = task
        started = time.thread_time()
        matches = self._engines[index].publish(event)
        return index, matches, time.thread_time() - started

    def publish(self, event: Event) -> list[SemanticMatch]:
        """Fan one publication out across every shard and merge the
        per-shard match sets back into global insertion order.

        Every shard sees every event (any shard's subscriptions may
        match), but each works against its own interest index — an
        empty or uninterested shard prunes the expansion to nearly
        nothing.  Per-shard CPU is measured with thread time so the
        recorded critical path stays meaningful on GIL interpreters.
        """
        self.publications += 1
        if len(self._engines) == 1:
            # degenerate single-shard path: no executor hop, no merge —
            # shard-local insertion order is already the global order.
            started = time.thread_time()
            matches = self._engines[0].publish(event)
            span = time.thread_time() - started
            self._busy_cpu_seconds[0] += span
            self._critical_path_seconds += span
            return matches
        if self._distributed:
            return self._publish_distributed(event)
        tasks = [(index, event) for index in range(len(self._engines))]
        merged: list[SemanticMatch] = []
        slowest = 0.0
        for index, matches, span in self._executor.map(self._publish_shard, tasks):
            merged.extend(matches)
            self._busy_cpu_seconds[index] += span
            slowest = max(slowest, span)
        self._critical_path_seconds += slowest
        seq = self._seq_of
        merged.sort(key=lambda match: seq[match.subscription.sub_id])
        return merged

    def _discard_plane(self) -> None:
        if self._plane is not None:
            plane, self._plane = self._plane, None
            plane.close()
        self._plane_dirty = False

    def _shard_replica_spec(self, index: int) -> tuple[SemanticConfig, list[Subscription]]:
        """What shard *index*'s worker must hold right now: the current
        config and the shard's subscriptions in global insertion order.
        The data plane reads this at launch *and* at every respawn, so
        a replacement worker resyncs to the parent's present state —
        churn and reconfigure included — without replaying any ops."""
        subscriptions = [
            self._subs_by_id[sub_id]
            for sub_id, _ in sorted(self._seq_of.items(), key=lambda item: item[1])
            if self.shard_of(sub_id) == index
        ]
        return self._engines[0].config, subscriptions

    def _ensure_plane(self) -> _ProcessDataPlane:
        """The live worker fleet, rebuilt from the control plane when
        marked dirty or when the knowledge base version moved since the
        fork (workers hold a fork-time KB copy and cannot observe
        parent mutations — restart *is* the propagation mechanism)."""
        if self._plane is not None and (
            self._plane_dirty or self._plane.kb_version != self.kb.version
        ):
            self._discard_plane()
        if self._plane is None:
            self._plane = _ProcessDataPlane(
                self.kb,
                self._engine_factory,
                self._matcher_spec,
                self._engines[0].config,
                self._shard_replica_spec,
                shards=len(self._engines),
                start_method=getattr(self._executor, "start_method", None),
                request_timeout=self._request_timeout,
                policy=self._supervision_policy,
                stats=self._supervision,
                fault_plan=self._fault_plan,
            )
        return self._plane

    def _publish_inline_degraded(self, index: int, event: Event) -> tuple[list, float]:
        """Degraded-mode publish for one shard: run it on the parent's
        own replica, which is the control-plane source of truth and
        therefore always produces exactly what a healthy worker would
        have returned.  Slower (it shares the parent's core) but never
        wrong — the supervisor already counted the degradation."""
        started = time.thread_time()
        matches = self._engines[index].publish(event)
        return matches, time.thread_time() - started

    def _publish_distributed(self, event: Event) -> list[SemanticMatch]:
        """The process-executor publish path: encode once, fan the wire
        form out to every worker, decode the per-shard match rows
        against the parent's own table, merge as usual.  Matches carry
        the parent's original subscription and event objects — only the
        derived events cross the boundary.

        A ``None`` outcome for a shard means its supervisor degraded it
        (breaker open or retry budget spent) — the parent replica
        answers inline, so a publication *never* fails on worker
        trouble."""
        plane = self._ensure_plane()
        table = self.kb.concept_table() if self._engines[0].config.interning else None
        wire = event.to_wire(table)
        self._wire_fallbacks += wire_fallback_count(wire)
        merged: list[SemanticMatch] = []
        slowest = 0.0
        subs = self._subs_by_id
        for index, outcome in enumerate(plane.publish(wire)):
            if outcome is None:
                matches, span = self._publish_inline_degraded(index, event)
                self._busy_cpu_seconds[index] += span
                slowest = max(slowest, span)
                merged.extend(matches)
                continue
            derived_wires, rows, span = outcome
            self._busy_cpu_seconds[index] += span
            slowest = max(slowest, span)
            decoded = [DerivedEvent.from_wire(item, table) for item in derived_wires]
            for sub_id, generality, via_index in rows:
                merged.append(
                    SemanticMatch(subs[sub_id], event, decoded[via_index], generality)
                )
        self._critical_path_seconds += slowest
        seq = self._seq_of
        merged.sort(key=lambda match: seq[match.subscription.sub_id])
        return merged

    def explain(self, event: Event) -> PipelineResult:
        """The full (deliberately exhaustive) expansion — identical on
        every replica, so shard 0 answers for all."""
        return self._engines[0].explain(event)

    # -- mode control / semantic plumbing -------------------------------------------

    @property
    def config(self) -> SemanticConfig:
        return self._engines[0].config

    @property
    def mode(self) -> str:
        return self._engines[0].mode

    def reconfigure(self, config: SemanticConfig) -> None:
        """Switch every shard to *config*.  Each replica's own
        ``reconfigure`` is transactional; if one shard rejects the new
        configuration the already-switched shards are rolled back so
        the fleet never runs split-brain."""
        previous = self._engines[0].config
        switched = []
        try:
            for engine in self._engines:
                engine.reconfigure(config)
                switched.append(engine)
        except BaseException:
            for engine in switched:
                engine.reconfigure(previous)
            raise
        self._forward(None, "reconfigure", config)

    def bump_semantic_epoch(self, reason: str = "external") -> None:
        """Force-invalidate cached semantic state on every shard."""
        for engine in self._engines:
            engine.bump_semantic_epoch(reason)
        self._forward(None, "epoch", reason)

    def refresh(self) -> int:
        """Re-expand stale subscriptions on every shard that supports
        it (the subscription-side design); returns the total count.

        The single engine's ``refresh`` re-subscribes each stale
        subscription, moving it to the *end* of the insertion order; to
        keep sharded reporting order identical, the refreshed ids are
        re-sequenced here in the same global order the single engine
        would process them (its stale list follows subscribe order)."""
        stale = set(self.stale_subscriptions())
        refreshed = sum(
            engine.refresh()
            for engine in self._engines
            if hasattr(engine, "refresh")
        )
        if stale:
            for sub_id, _ in sorted(self._seq_of.items(), key=lambda item: item[1]):
                if sub_id in stale:
                    self._seq_of[sub_id] = self._next_seq
                    self._next_seq += 1
        if refreshed and self._plane is not None:
            # refresh only fires after knowledge-base motion, which the
            # fork-time worker KBs cannot see — rebuild, don't forward.
            self._plane_dirty = True
        return refreshed

    def stale_subscriptions(self) -> list[str]:
        return [
            sub_id
            for engine in self._engines
            if hasattr(engine, "stale_subscriptions")
            for sub_id in engine.stale_subscriptions()
        ]

    @property
    def semantic_version(self) -> tuple:
        """Per-shard semantic versions as one hashable cache key: any
        shard's knowledge-base sync or epoch bump shifts it, so the
        dispatcher's result cache can never serve a match set computed
        under a stale shard."""
        return tuple(engine.semantic_version for engine in self._engines)

    @property
    def subscription_epoch(self) -> tuple:
        """Per-shard churn epochs — any subscribe/unsubscribe anywhere
        shifts the dispatcher's result-cache key."""
        return tuple(engine.subscription_epoch for engine in self._engines)

    # -- reporting ------------------------------------------------------------------

    @property
    def supervision(self) -> SupervisionStats:
        """The engine's cumulative recovery counters (live object; use
        ``.snapshot()`` for a plain dict)."""
        return self._supervision

    def sharding_info(self) -> dict[str, object]:
        """Fan-out shape and measured shard-parallel cost."""
        return {
            "shards": len(self._engines),
            "executor": getattr(self._executor, "name", type(self._executor).__name__),
            # resolved per-shard matcher registry names: each replica
            # resolves its own backend from its config, so a numpy
            # preference surfaces here as e.g. "counting-numpy" (or the
            # scalar name where the preference degraded).
            "matchers": [
                getattr(getattr(engine, "matcher", None), "name", "?")
                for engine in self._engines
            ],
            "subscriptions_per_shard": [len(engine) for engine in self._engines],
            "publications": self.publications,
            "busy_cpu_seconds": list(self._busy_cpu_seconds),
            "critical_path_seconds": self._critical_path_seconds,
            # values that crossed to worker processes as string
            # fallbacks instead of interned ids (0 for in-process
            # executors, where nothing crosses a wire at all)
            "wire_fallbacks": self._wire_fallbacks,
            "request_timeout": self._request_timeout,
            # recovery counters (all zero for in-process executors and
            # for any process run that never hit worker trouble)
            "supervision": self._supervision.snapshot(),
            "breaker_states": (
                self._plane.breaker_states
                if self._plane is not None
                else ["closed"] * len(self._engines)
            ),
        }

    def stats(self) -> dict[str, object]:
        """Aggregate stats in the single-engine shape (counters summed
        across shards via :func:`~repro.metrics.aggregate.merge_stats`)
        plus a ``sharding`` section with the fan-out shape and the
        per-shard snapshots under ``sharding.shard_stats``.

        Under a live process plane the per-shard snapshots come from
        the worker replicas (where the publish work actually ran); the
        local control replicas answer otherwise — including for any
        individual shard whose worker is down or degraded (the plane
        reports those as ``None`` holes)."""
        per_shard = None
        if (
            self._plane is not None
            and not self._plane_dirty
            and self._plane.kb_version == self.kb.version
        ):
            try:
                per_shard = self._plane.stats()
            except BaseException:
                self._discard_plane()
        if per_shard is None:
            per_shard = [engine.stats() for engine in self._engines]
        else:
            per_shard = [
                snapshot if snapshot is not None else self._engines[index].stats()
                for index, snapshot in enumerate(per_shard)
            ]
        merged = merge_stats(per_shard)
        sharding = self.sharding_info()
        sharding["shard_stats"] = per_shard
        merged["sharding"] = sharding
        return merged

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Stop the worker fleet (always engine-owned) and release the
        executor (owned executors only — instances the caller passed in
        are theirs to close)."""
        self._discard_plane()
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedBroker(Broker):
    """A :class:`~repro.broker.broker.Broker` whose engine is a
    :class:`ShardedEngine` — same registration/subscribe/publish API,
    same dispatcher, result cache, and notification fan-out, with the
    matching work partitioned across N replicas.

    >>> from repro.ontology.domains import build_jobs_knowledge_base
    >>> broker = ShardedBroker(build_jobs_knowledge_base(), shards=4)
    >>> company = broker.register_subscriber("Initech", email="hr@initech.example")
    >>> sub = broker.subscribe(company.client_id,
    ...     "(university = Toronto) and (degree = PhD)")
    >>> candidate = broker.register_publisher("Ada")
    >>> report = broker.publish(candidate.client_id,
    ...     "(school, Toronto)(degree, PhD)")
    >>> report.match_count
    1
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        *,
        shards: int = 4,
        matcher: str | MatchingAlgorithm = "counting",
        config: SemanticConfig | None = None,
        transports: TransportRegistry | None = None,
        engine_factory: Callable | None = None,
        executor: object | str = "serial",
        router: Callable[[str, int], int] | None = None,
        request_timeout: float | None = None,
        supervision: SupervisionPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        durability=None,
    ) -> None:
        super().__init__(
            kb,
            matcher=matcher,
            config=config,
            transports=transports,
            durability=durability,
            engine=ShardedEngine(
                kb,
                shards=shards,
                matcher=matcher,
                config=config,
                engine_factory=engine_factory,
                executor=executor,
                router=router,
                request_timeout=request_timeout,
                supervision=supervision,
                fault_plan=fault_plan,
            ),
        )

    @property
    def engines(self) -> tuple:
        return self.engine.engines

"""The broker facade: S-ToPSS "collocated at a job-finder web server".

One object wiring every Figure 2 component together with a
string-friendly API (the web application and CLI speak the textual
subscription/event language).  This is the type a downstream user
instantiates first; everything underneath remains reachable for
composition.

With ``durability=`` the broker becomes crash-safe: every
state-changing operation is journaled write-ahead (publishes before
matching, churn after it succeeds), deliveries are outboxed/acked, and
:func:`~repro.broker.durability.recover` rebuilds an equivalent broker
after a crash.  See ``docs/DURABILITY.md``.
"""

from __future__ import annotations

import os

from repro.broker.clients import Client, ClientKind, ClientRegistry
from repro.broker.dispatcher import EventDispatcher, PublishReport
from repro.broker.durability import (
    Durability,
    _encode_client,
    _encode_config,
    _encode_event,
    _encode_subscription,
)
from repro.broker.notifications import DeliveryOutcome, NotificationEngine
from repro.broker.transports import TransportRegistry, default_transports
from repro.core.config import SemanticConfig
from repro.core.engine import SToPSS
from repro.errors import DurabilityError
from repro.matching.base import MatchingAlgorithm
from repro.model.events import Event
from repro.model.parser import parse_event, parse_subscription
from repro.model.subscriptions import Subscription
from repro.ontology.knowledge_base import KnowledgeBase

__all__ = ["Broker"]


class Broker:
    """High-level S-ToPSS broker.

    >>> from repro.ontology.domains import build_jobs_knowledge_base
    >>> broker = Broker(build_jobs_knowledge_base())
    >>> company = broker.register_subscriber("Initech", email="hr@initech.example")
    >>> sub = broker.subscribe(company.client_id,
    ...     "(university = Toronto) and (degree = PhD)")
    >>> candidate = broker.register_publisher("Ada")
    >>> report = broker.publish(candidate.client_id,
    ...     "(school, Toronto)(degree, PhD)")
    >>> report.match_count
    1
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        *,
        matcher: str | MatchingAlgorithm = "counting",
        config: SemanticConfig | None = None,
        transports: TransportRegistry | None = None,
        engine=None,
        durability: Durability | str | os.PathLike | None = None,
    ) -> None:
        self.kb = kb
        # an injected engine (any object satisfying the dispatcher's
        # engine interface — e.g. a ShardedEngine) wins over the
        # matcher/config construction parameters.
        self.engine = engine if engine is not None else SToPSS(kb, matcher=matcher, config=config)
        if durability is not None and not isinstance(durability, Durability):
            durability = Durability(durability)
        if (
            durability is not None
            and durability.has_state
            and not durability.replay_active
        ):
            raise DurabilityError(
                f"directory {durability.directory} already holds durable broker "
                "state; use repro.broker.durability.recover() to rebuild from it"
            )
        self.durability = durability
        self._op_index = 0
        self.recovery = None  # RecoveryReport when built by recover()
        self.registry = ClientRegistry()
        self.notifier = NotificationEngine(
            transports if transports is not None else default_transports(),
            durability=durability,
        )
        self.dispatcher = EventDispatcher(self.engine, self.registry, self.notifier)

    # -- journaling ---------------------------------------------------------------

    def _journal_op(self, payload: dict) -> None:
        """Journal one broker-level operation (no-op when not durable or
        while recovery is replaying existing records).  Auto-compaction
        runs *before* the append, when the in-memory state is consistent
        with every record already journaled."""
        durability = self.durability
        if durability is None or durability.replay_active:
            return
        if durability.should_compact():
            durability.compact(self._durable_state())
        record = dict(payload)
        record["oi"] = self._op_index
        self._op_index += 1
        durability.append(record)
        durability.note_op()

    def _durable_state(self) -> dict:
        """The broker's complete durable state, snapshot-shaped."""
        subscriptions = []
        for subscription in self.engine.subscriptions():
            client_id = self.dispatcher._subscriber_of.get(subscription.sub_id)
            if client_id is None:  # engine-only subscription (tests)
                continue
            subscriptions.append(_encode_subscription(subscription, client_id))
        config = getattr(self.engine, "config", None)
        return {
            "next_op_index": self._op_index,
            "config": _encode_config(config) if config is not None else None,
            "clients": [_encode_client(client) for client in self.registry.clients()],
            "subscriptions": subscriptions,
            "notifier": self.notifier.durable_state(),
        }

    def checkpoint(self) -> None:
        """Fold current state into a compacted snapshot now (automatic
        compaction runs every ``snapshot_every`` operations)."""
        if self.durability is None:
            raise DurabilityError("broker has no durability store to checkpoint")
        self.durability.compact(self._durable_state())

    # -- registration -------------------------------------------------------------

    def register_subscriber(
        self,
        name: str,
        *,
        email: str | None = None,
        sms: str | None = None,
        tcp: str | None = None,
        udp: str | None = None,
        client_id: str | None = None,
    ) -> Client:
        """Register a subscriber with transport addresses in keyword
        order of preference (email first by convention)."""
        return self._register(
            name,
            kind=ClientKind.SUBSCRIBER,
            addresses=self._addresses(email=email, sms=sms, tcp=tcp, udp=udp),
            client_id=client_id,
        )

    def register_publisher(self, name: str, *, client_id: str | None = None) -> Client:
        return self._register(
            name, kind=ClientKind.PUBLISHER, addresses=(), client_id=client_id
        )

    def register_client(
        self,
        name: str,
        *,
        kind: ClientKind = ClientKind.BOTH,
        email: str | None = None,
        sms: str | None = None,
        tcp: str | None = None,
        udp: str | None = None,
        client_id: str | None = None,
    ) -> Client:
        return self._register(
            name,
            kind=kind,
            addresses=self._addresses(email=email, sms=sms, tcp=tcp, udp=udp),
            client_id=client_id,
        )

    def _register(
        self,
        name: str,
        *,
        kind: ClientKind,
        addresses: tuple[tuple[str, str], ...],
        client_id: str | None,
    ) -> Client:
        client = self.registry.register(
            name, kind=kind, addresses=addresses, client_id=client_id
        )
        self._journal_op(_encode_client(client))
        return client

    def remove_client(self, client_id: str) -> Client:
        """Remove a client, dropping its subscriptions first (each drop
        is journaled individually, so recovery replays the same way)."""
        for subscription in self.dispatcher.subscriptions_of(client_id):
            self.unsubscribe(subscription.sub_id)
        client = self.registry.remove(client_id)
        self._journal_op({"k": "remove", "id": client_id})
        return client

    @staticmethod
    def _addresses(
        *, email: str | None, sms: str | None, tcp: str | None, udp: str | None
    ) -> tuple[tuple[str, str], ...]:
        pairs = []
        if email:
            pairs.append(("smtp", email))
        if sms:
            pairs.append(("sms", sms))
        if tcp:
            pairs.append(("tcp", tcp))
        if udp:
            pairs.append(("udp", udp))
        if not pairs:
            # Registry-internal loopback keeps notification delivery
            # observable even for clients that gave no address.
            pairs.append(("tcp", "loopback"))
        return tuple(pairs)

    # -- pub/sub --------------------------------------------------------------------

    def subscribe(
        self,
        client_id: str,
        subscription: str | Subscription,
        *,
        max_generality: int | None = None,
    ) -> Subscription:
        """Subscribe from a :class:`Subscription` or language text."""
        if isinstance(subscription, str):
            subscription = parse_subscription(subscription, max_generality=max_generality)
        elif max_generality is not None:
            subscription = Subscription(
                subscription.predicates,
                subscriber_id=subscription.subscriber_id,
                sub_id=subscription.sub_id,
                max_generality=max_generality,
            )
        bound = self.dispatcher.subscribe(client_id, subscription)
        self._journal_op(_encode_subscription(bound, client_id))
        return bound

    def unsubscribe(self, sub_id: str) -> Subscription:
        removed = self.dispatcher.unsubscribe(sub_id)
        self._journal_op({"k": "unsub", "sid": sub_id})
        return removed

    def publish(self, client_id: str, event: str | Event) -> PublishReport:
        """Publish from an :class:`Event` or language text.  Durable
        brokers journal the publish *before* matching (write-ahead), so
        a crash mid-fan-out replays the event and reconciles deliveries
        against the journaled outbox."""
        if isinstance(event, str):
            event = parse_event(event)
        self._journal_op(_encode_event(event, client_id))
        return self.dispatcher.publish(client_id, event)

    def replay_from(self, sub_id: str, sequence: int) -> list[DeliveryOutcome]:
        """Re-deliver this subscription's retained delivery log from
        *sequence* onward — a reconnecting subscriber's catch-up call;
        it dedups by the ``(sub_id, sequence)`` stamped on every
        notification."""
        return self.notifier.replay_from(sub_id, sequence, self.registry)

    # -- modes (paper §4: semantic vs. syntactic demo modes) -----------------------------

    @property
    def mode(self) -> str:
        return self.engine.mode

    def reconfigure(self, config: SemanticConfig) -> None:
        """Swap the engine's semantic configuration (journaled, so a
        recovered broker matches with the same tolerances)."""
        self.engine.reconfigure(config)
        self._journal_op({"k": "config", "cfg": _encode_config(config)})

    def set_semantic_mode(self) -> None:
        self.reconfigure(SemanticConfig.semantic())

    def set_syntactic_mode(self) -> None:
        self.reconfigure(SemanticConfig.syntactic())

    # -- reporting -------------------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        stats = self.dispatcher.stats()
        if self.durability is not None:
            stats["durability"] = self.durability.stats.snapshot()
        return stats

    def health(self) -> dict[str, object]:
        """Operational health snapshot: the sharded data plane's
        recovery counters and breaker states in the defensive
        :func:`~repro.metrics.aggregate.supervision_summary` shape,
        plus the notification dead-letter depth and the
        :func:`~repro.metrics.aggregate.durability_summary` counters.
        A plain single-engine broker (no ``sharding`` stats section)
        reports all-zero counters — ``health()["recoveries"] == 0``
        always means "nothing needed rescuing"."""
        from repro.metrics.aggregate import durability_summary, supervision_summary

        stats = self.stats()
        engine_stats = stats.get("engine")
        if not isinstance(engine_stats, dict):
            engine_stats = stats
        health = supervision_summary(engine_stats)
        health["dead_letters"] = len(self.notifier.dead_letters)
        health["history_evictions"] = self.notifier.stats.history_evictions
        health["durability"] = durability_summary(stats)
        return health

    # -- lifecycle -------------------------------------------------------------------------

    def close(self) -> None:
        """Release engine-held resources (executor pools, worker
        processes, shared-memory segments) and the journal handle.  A
        plain single-engine broker holds none, so this is a no-op there
        — having it on the base class means ``with Broker(...)``-style
        cleanup code works unchanged when the engine is swapped for a
        sharded one."""
        closer = getattr(self.engine, "close", None)
        if closer is not None:
            closer()
        if self.durability is not None:
            self.durability.close()

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

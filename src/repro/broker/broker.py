"""The broker facade: S-ToPSS "collocated at a job-finder web server".

One object wiring every Figure 2 component together with a
string-friendly API (the web application and CLI speak the textual
subscription/event language).  This is the type a downstream user
instantiates first; everything underneath remains reachable for
composition.
"""

from __future__ import annotations

from repro.broker.clients import Client, ClientKind, ClientRegistry
from repro.broker.dispatcher import EventDispatcher, PublishReport
from repro.broker.notifications import NotificationEngine
from repro.broker.transports import TransportRegistry, default_transports
from repro.core.config import SemanticConfig
from repro.core.engine import SToPSS
from repro.matching.base import MatchingAlgorithm
from repro.model.events import Event
from repro.model.parser import parse_event, parse_subscription
from repro.model.subscriptions import Subscription
from repro.ontology.knowledge_base import KnowledgeBase

__all__ = ["Broker"]


class Broker:
    """High-level S-ToPSS broker.

    >>> from repro.ontology.domains import build_jobs_knowledge_base
    >>> broker = Broker(build_jobs_knowledge_base())
    >>> company = broker.register_subscriber("Initech", email="hr@initech.example")
    >>> sub = broker.subscribe(company.client_id,
    ...     "(university = Toronto) and (degree = PhD)")
    >>> candidate = broker.register_publisher("Ada")
    >>> report = broker.publish(candidate.client_id,
    ...     "(school, Toronto)(degree, PhD)")
    >>> report.match_count
    1
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        *,
        matcher: str | MatchingAlgorithm = "counting",
        config: SemanticConfig | None = None,
        transports: TransportRegistry | None = None,
        engine=None,
    ) -> None:
        self.kb = kb
        # an injected engine (any object satisfying the dispatcher's
        # engine interface — e.g. a ShardedEngine) wins over the
        # matcher/config construction parameters.
        self.engine = engine if engine is not None else SToPSS(kb, matcher=matcher, config=config)
        self.registry = ClientRegistry()
        self.notifier = NotificationEngine(
            transports if transports is not None else default_transports()
        )
        self.dispatcher = EventDispatcher(self.engine, self.registry, self.notifier)

    # -- registration -------------------------------------------------------------

    def register_subscriber(
        self,
        name: str,
        *,
        email: str | None = None,
        sms: str | None = None,
        tcp: str | None = None,
        udp: str | None = None,
        client_id: str | None = None,
    ) -> Client:
        """Register a subscriber with transport addresses in keyword
        order of preference (email first by convention)."""
        return self.registry.register(
            name,
            kind=ClientKind.SUBSCRIBER,
            addresses=self._addresses(email=email, sms=sms, tcp=tcp, udp=udp),
            client_id=client_id,
        )

    def register_publisher(self, name: str, *, client_id: str | None = None) -> Client:
        return self.registry.register(
            name, kind=ClientKind.PUBLISHER, addresses=(), client_id=client_id
        )

    def register_client(
        self,
        name: str,
        *,
        kind: ClientKind = ClientKind.BOTH,
        email: str | None = None,
        sms: str | None = None,
        tcp: str | None = None,
        udp: str | None = None,
        client_id: str | None = None,
    ) -> Client:
        return self.registry.register(
            name,
            kind=kind,
            addresses=self._addresses(email=email, sms=sms, tcp=tcp, udp=udp),
            client_id=client_id,
        )

    @staticmethod
    def _addresses(
        *, email: str | None, sms: str | None, tcp: str | None, udp: str | None
    ) -> tuple[tuple[str, str], ...]:
        pairs = []
        if email:
            pairs.append(("smtp", email))
        if sms:
            pairs.append(("sms", sms))
        if tcp:
            pairs.append(("tcp", tcp))
        if udp:
            pairs.append(("udp", udp))
        if not pairs:
            # Registry-internal loopback keeps notification delivery
            # observable even for clients that gave no address.
            pairs.append(("tcp", "loopback"))
        return tuple(pairs)

    # -- pub/sub --------------------------------------------------------------------

    def subscribe(
        self,
        client_id: str,
        subscription: str | Subscription,
        *,
        max_generality: int | None = None,
    ) -> Subscription:
        """Subscribe from a :class:`Subscription` or language text."""
        if isinstance(subscription, str):
            subscription = parse_subscription(subscription, max_generality=max_generality)
        elif max_generality is not None:
            subscription = Subscription(
                subscription.predicates,
                subscriber_id=subscription.subscriber_id,
                sub_id=subscription.sub_id,
                max_generality=max_generality,
            )
        return self.dispatcher.subscribe(client_id, subscription)

    def unsubscribe(self, sub_id: str) -> Subscription:
        return self.dispatcher.unsubscribe(sub_id)

    def publish(self, client_id: str, event: str | Event) -> PublishReport:
        """Publish from an :class:`Event` or language text."""
        if isinstance(event, str):
            event = parse_event(event)
        return self.dispatcher.publish(client_id, event)

    # -- modes (paper §4: semantic vs. syntactic demo modes) -----------------------------

    @property
    def mode(self) -> str:
        return self.engine.mode

    def set_semantic_mode(self) -> None:
        self.engine.reconfigure(SemanticConfig.semantic())

    def set_syntactic_mode(self) -> None:
        self.engine.reconfigure(SemanticConfig.syntactic())

    # -- reporting -------------------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        return self.dispatcher.stats()

    def health(self) -> dict[str, object]:
        """Operational health snapshot: the sharded data plane's
        recovery counters and breaker states in the defensive
        :func:`~repro.metrics.aggregate.supervision_summary` shape.
        A plain single-engine broker (no ``sharding`` stats section)
        reports all-zero counters — ``health()["recoveries"] == 0``
        always means "nothing needed rescuing"."""
        from repro.metrics.aggregate import supervision_summary

        stats = self.stats()
        engine_stats = stats.get("engine")
        if not isinstance(engine_stats, dict):
            engine_stats = stats
        return supervision_summary(engine_stats)

    # -- lifecycle -------------------------------------------------------------------------

    def close(self) -> None:
        """Release engine-held resources (executor pools, worker
        processes, shared-memory segments).  A plain single-engine
        broker holds none, so this is a no-op there — having it on the
        base class means ``with Broker(...)``-style cleanup code works
        unchanged when the engine is swapped for a sharded one."""
        closer = getattr(self.engine, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Broker substrate: event dispatcher, client registry, and the
multi-transport notification engine of the demonstration setup
(paper Figure 2)."""

from repro.broker.broker import Broker
from repro.broker.clients import Client, ClientKind, ClientRegistry
from repro.broker.dispatcher import EventDispatcher, PublishReport
from repro.broker.durability import (
    Durability,
    DurabilityStats,
    RecoveryReport,
    recover,
)
from repro.broker.sharding import (
    ProcessExecutor,
    SerialExecutor,
    ShardedBroker,
    ShardedEngine,
    ThreadedExecutor,
    default_router,
)
from repro.broker.supervision import (
    CircuitBreaker,
    FaultAction,
    FaultPlan,
    SupervisionPolicy,
    SupervisionStats,
)
from repro.broker.notifications import (
    DeliveryEntry,
    DeliveryOutcome,
    Notification,
    NotificationEngine,
)
from repro.broker.transports import (
    DeliveryRecord,
    OutboundMessage,
    SmsTransport,
    SmtpTransport,
    TcpTransport,
    Transport,
    TransportRegistry,
    UdpTransport,
    default_transports,
)

__all__ = [
    "Broker",
    "Durability",
    "DurabilityStats",
    "RecoveryReport",
    "recover",
    "ShardedBroker",
    "ShardedEngine",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "default_router",
    "CircuitBreaker",
    "FaultAction",
    "FaultPlan",
    "SupervisionPolicy",
    "SupervisionStats",
    "Client",
    "ClientKind",
    "ClientRegistry",
    "EventDispatcher",
    "PublishReport",
    "Notification",
    "NotificationEngine",
    "DeliveryEntry",
    "DeliveryOutcome",
    "Transport",
    "TransportRegistry",
    "SmsTransport",
    "SmtpTransport",
    "TcpTransport",
    "UdpTransport",
    "OutboundMessage",
    "DeliveryRecord",
    "default_transports",
]

"""Client registry: the decoupled components of a pub/sub system.

"Clients are autonomous components that exchange information by
publishing events and by subscribing to the classes of events they are
interested in" (paper §1).  The demonstration's web application
registers companies (subscribers) and candidates (publishers); each
client carries the transport addresses the notification engine may use
to reach it (Figure 2: SMS / SMTP / TCP / UDP).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import DuplicateClientError, UnknownClientError

__all__ = ["ClientKind", "Client", "ClientRegistry"]


class ClientKind(enum.Enum):
    """What a client does; ``BOTH`` is legal (paper components may
    publish and subscribe)."""

    PUBLISHER = "publisher"
    SUBSCRIBER = "subscriber"
    BOTH = "both"

    @property
    def can_publish(self) -> bool:
        return self in (ClientKind.PUBLISHER, ClientKind.BOTH)

    @property
    def can_subscribe(self) -> bool:
        return self in (ClientKind.SUBSCRIBER, ClientKind.BOTH)


_client_counter = itertools.count(1)


@dataclass(frozen=True)
class Client:
    """An immutable registered client.

    ``addresses`` maps transport name → address, in *preference order*
    (insertion order of the dict); the notification engine tries them
    in that order.
    """

    client_id: str
    name: str
    kind: ClientKind = ClientKind.BOTH
    addresses: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def address_for(self, transport: str) -> str | None:
        for name, address in self.addresses:
            if name == transport:
                return address
        return None

    def preferred_transports(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.addresses)

    def __str__(self) -> str:
        return f"{self.name} ({self.client_id}, {self.kind.value})"


class ClientRegistry:
    """Id-keyed client store with auto-assigned ids."""

    def __init__(self) -> None:
        self._clients: dict[str, Client] = {}

    def register(
        self,
        name: str,
        *,
        kind: ClientKind = ClientKind.BOTH,
        addresses: dict[str, str] | tuple[tuple[str, str], ...] = (),
        client_id: str | None = None,
    ) -> Client:
        """Register a client; duplicate explicit ids raise
        :class:`~repro.errors.DuplicateClientError`."""
        if client_id is None:
            client_id = f"c{next(_client_counter)}"
        if client_id in self._clients:
            raise DuplicateClientError(f"client {client_id!r} already registered")
        pairs = tuple(addresses.items()) if isinstance(addresses, dict) else tuple(addresses)
        client = Client(client_id=client_id, name=name, kind=kind, addresses=pairs)
        self._clients[client_id] = client
        return client

    def get(self, client_id: str) -> Client:
        try:
            return self._clients[client_id]
        except KeyError:
            raise UnknownClientError(f"no client {client_id!r}") from None

    def remove(self, client_id: str) -> Client:
        try:
            return self._clients.pop(client_id)
        except KeyError:
            raise UnknownClientError(f"no client {client_id!r}") from None

    def __len__(self) -> int:
        return len(self._clients)

    def __contains__(self, client_id: str) -> bool:
        return client_id in self._clients

    def clients(self) -> Iterator[Client]:
        yield from self._clients.values()

    def subscribers(self) -> Iterator[Client]:
        for client in self._clients.values():
            if client.kind.can_subscribe:
                yield client

    def publishers(self) -> Iterator[Client]:
        for client in self._clients.values():
            if client.kind.can_publish:
                yield client

"""Simulated notification transports: SMS, SMTP, TCP, UDP (Figure 2).

The paper's demonstration "presents a notification engine that can send
notifications to the clients using different transports".  The original
demo used real SMS gateways and sockets; this reproduction substitutes
deterministic in-process simulations that preserve the properties the
notification engine must handle:

* **SMS** — tiny payload limit (messages are truncated to 160
  characters) and moderate, injectable failure probability;
* **SMTP** — full message with headers, occasional transient failures
  (greylisting) that succeed on retry;
* **TCP** — reliable and connection-oriented: per-address connection
  state with setup cost on first use;
* **UDP** — fire-and-forget: sends never fail, but messages may be
  *dropped* silently (recorded in the journal, invisible to callers).

All randomness is seeded, so tests and benchmarks are reproducible.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import TransportError

__all__ = [
    "OutboundMessage",
    "DeliveryRecord",
    "Transport",
    "SmsTransport",
    "SmtpTransport",
    "TcpTransport",
    "UdpTransport",
    "TransportRegistry",
    "default_transports",
]

_message_counter = itertools.count(1)

#: Delivery statuses recorded in transport journals.
DELIVERED = "delivered"
DROPPED = "dropped"
FAILED = "failed"


@dataclass(frozen=True)
class OutboundMessage:
    """One message handed to a transport."""

    transport: str
    address: str
    subject: str
    body: str
    notification_id: str = ""
    attempt: int = 1
    message_id: str = field(default_factory=lambda: f"m{next(_message_counter)}")


@dataclass(frozen=True)
class DeliveryRecord:
    """The transport's verdict on one send."""

    message: OutboundMessage
    status: str
    latency_ms: float
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == DELIVERED


class Transport:
    """Base simulated transport.

    Subclasses override :meth:`_transmit` and the class attributes.
    ``failure_rate`` is the probability a send raises
    :class:`~repro.errors.TransportError` (retryable); the seeded
    ``rng`` makes behaviour reproducible.  :meth:`fail_next` forces
    deterministic failures for tests.
    """

    name = "abstract"
    base_latency_ms = 1.0
    reliable = True

    def __init__(self, *, failure_rate: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise TransportError(f"failure_rate must be in [0, 1), got {failure_rate}")
        self.failure_rate = failure_rate
        self.rng = random.Random(seed)
        self.journal: list[DeliveryRecord] = []
        self._forced_failures = 0

    # -- test / chaos hooks ---------------------------------------------------

    def fail_next(self, count: int = 1) -> None:
        """Force the next *count* sends to fail (deterministic chaos)."""
        self._forced_failures += count

    # -- sending -----------------------------------------------------------------

    def send(self, message: OutboundMessage) -> DeliveryRecord:
        """Attempt delivery; raises :class:`TransportError` on failure
        (the notification engine owns retry policy)."""
        if self._forced_failures > 0:
            self._forced_failures -= 1
            record = DeliveryRecord(message, FAILED, self.base_latency_ms, "forced failure")
            self.journal.append(record)
            raise TransportError(f"{self.name}: forced failure for {message.address!r}")
        if self.failure_rate and self.rng.random() < self.failure_rate:
            record = DeliveryRecord(message, FAILED, self.base_latency_ms, "transient failure")
            self.journal.append(record)
            raise TransportError(f"{self.name}: transient failure for {message.address!r}")
        record = self._transmit(message)
        self.journal.append(record)
        return record

    def _transmit(self, message: OutboundMessage) -> DeliveryRecord:
        return DeliveryRecord(message, DELIVERED, self._latency())

    def _latency(self) -> float:
        # Uniform jitter around the base keeps latency histograms
        # non-degenerate without importing a distribution substrate.
        return self.base_latency_ms * (0.5 + self.rng.random())

    # -- journal -----------------------------------------------------------------------

    def delivered(self) -> Iterator[DeliveryRecord]:
        return (r for r in self.journal if r.status == DELIVERED)

    def delivered_count(self) -> int:
        return sum(1 for _ in self.delivered())

    def stats(self) -> dict[str, int]:
        counts = {DELIVERED: 0, DROPPED: 0, FAILED: 0}
        for record in self.journal:
            counts[record.status] = counts.get(record.status, 0) + 1
        counts["total"] = len(self.journal)
        return counts

    def reset(self) -> None:
        self.journal.clear()
        self._forced_failures = 0


class SmsTransport(Transport):
    """SMS: 160-character payload limit, moderate failure rate."""

    name = "sms"
    base_latency_ms = 2000.0
    MAX_LENGTH = 160

    def __init__(self, *, failure_rate: float = 0.02, seed: int = 0) -> None:
        super().__init__(failure_rate=failure_rate, seed=seed)

    def _transmit(self, message: OutboundMessage) -> DeliveryRecord:
        payload = message.body
        detail = ""
        if len(payload) > self.MAX_LENGTH:
            detail = f"truncated to {self.MAX_LENGTH} characters"
        return DeliveryRecord(message, DELIVERED, self._latency(), detail)

    @classmethod
    def render(cls, subject: str, body: str) -> str:
        """SMS payloads merge subject and body, then truncate."""
        combined = f"{subject}: {body}"
        return combined[: cls.MAX_LENGTH]


class SmtpTransport(Transport):
    """SMTP: header-framed messages, greylisting-style transient
    failures that succeed on retry."""

    name = "smtp"
    base_latency_ms = 150.0

    def __init__(self, *, failure_rate: float = 0.05, seed: int = 0) -> None:
        super().__init__(failure_rate=failure_rate, seed=seed)
        self.sent_mail: list[str] = []

    def _transmit(self, message: OutboundMessage) -> DeliveryRecord:
        mail = (
            f"From: stopss@jobfinder.example\n"
            f"To: {message.address}\n"
            f"Subject: {message.subject}\n\n"
            f"{message.body}\n"
        )
        self.sent_mail.append(mail)
        return DeliveryRecord(message, DELIVERED, self._latency())


class TcpTransport(Transport):
    """TCP: reliable; first send to an address pays connection setup."""

    name = "tcp"
    base_latency_ms = 5.0
    CONNECT_COST_MS = 30.0

    def __init__(self, *, failure_rate: float = 0.0, seed: int = 0) -> None:
        super().__init__(failure_rate=failure_rate, seed=seed)
        self.connections: dict[str, int] = {}

    def _transmit(self, message: OutboundMessage) -> DeliveryRecord:
        latency = self._latency()
        detail = ""
        if message.address not in self.connections:
            latency += self.CONNECT_COST_MS
            detail = "connection established"
        self.connections[message.address] = self.connections.get(message.address, 0) + 1
        return DeliveryRecord(message, DELIVERED, latency, detail)


class UdpTransport(Transport):
    """UDP: never errors, silently drops a seeded fraction of sends."""

    name = "udp"
    base_latency_ms = 1.0
    reliable = False

    def __init__(self, *, drop_rate: float = 0.05, seed: int = 0) -> None:
        super().__init__(failure_rate=0.0, seed=seed)
        if not 0.0 <= drop_rate < 1.0:
            raise TransportError(f"drop_rate must be in [0, 1), got {drop_rate}")
        self.drop_rate = drop_rate

    def _transmit(self, message: OutboundMessage) -> DeliveryRecord:
        if self.drop_rate and self.rng.random() < self.drop_rate:
            return DeliveryRecord(message, DROPPED, self._latency(), "datagram lost")
        return DeliveryRecord(message, DELIVERED, self._latency())


class TransportRegistry:
    """Named transport collection used by the notification engine."""

    def __init__(self, transports: Iterator[Transport] | list[Transport] = ()) -> None:
        self._transports: dict[str, Transport] = {}
        for transport in transports:
            self.add(transport)

    def add(self, transport: Transport) -> Transport:
        if transport.name in self._transports:
            raise TransportError(f"transport {transport.name!r} already registered")
        self._transports[transport.name] = transport
        return transport

    def get(self, name: str) -> Transport:
        try:
            return self._transports[name]
        except KeyError:
            raise TransportError(f"unknown transport {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._transports

    def names(self) -> tuple[str, ...]:
        return tuple(self._transports)

    def stats(self) -> dict[str, dict[str, int]]:
        return {name: t.stats() for name, t in self._transports.items()}

    def reset(self) -> None:
        for transport in self._transports.values():
            transport.reset()


def default_transports(seed: int = 0) -> TransportRegistry:
    """The demonstration's four transports (Figure 2), seeded."""
    return TransportRegistry(
        [
            SmsTransport(seed=seed),
            SmtpTransport(seed=seed + 1),
            TcpTransport(seed=seed + 2),
            UdpTransport(seed=seed + 3),
        ]
    )

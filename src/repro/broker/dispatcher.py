"""The event dispatcher: the central pub/sub component.

"The central component of this architecture is the event dispatcher.
This component records all subscriptions in the system.  When a certain
event is published, the event dispatcher matches it against all
subscriptions … and sends a notification to the corresponding
subscriber" (paper §1).

The dispatcher wires the S-ToPSS engine (matching) to the client
registry (who subscribed) and the notification engine (how to reach
them).  It enforces client roles — only subscribers may subscribe,
only publishers may publish.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.broker.clients import Client, ClientRegistry
from repro.broker.notifications import DeliveryOutcome, NotificationEngine
from repro.core.engine import SToPSS
from repro.core.provenance import SemanticMatch
from repro.errors import BrokerError, UnknownSubscriptionError
from repro.model.events import Event
from repro.model.subscriptions import Subscription

__all__ = ["EventDispatcher", "PublishReport"]


@dataclass(frozen=True)
class PublishReport:
    """Everything that happened for one publication."""

    event: Event
    matches: tuple[SemanticMatch, ...]
    outcomes: tuple[DeliveryOutcome, ...]

    @property
    def match_count(self) -> int:
        return len(self.matches)

    @property
    def delivered_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.delivered)


class EventDispatcher:
    """Subscription records + matching + notification fan-out.

    The dispatcher keeps a bounded LRU **result cache**: match sets
    memoized by ``(event content signature, publisher, engine semantic
    version, active configuration, subscription epoch)``.  Workload
    traces repeat publications, and for a repeated event the entire
    engine pass — expansion *and* matching — is redundant as long as
    nothing the match set depends on has moved; every input it does
    depend on is folded into the key, so knowledge-base edits, epoch
    bumps (refresh), reconfiguration, and any subscribe/unsubscribe all
    shift the key and strand stale entries (which age out by LRU).
    Cached hits re-stamp the match set onto the fresh publication's
    event object, so delivery reports always carry the real event id;
    the ``matched_via`` derivation chain is reused from the first
    publication (content-identical, but its intermediate auto ids are
    the original derivation's — the same reuse the engine's expansion
    cache performs).  ``result_cache_size=0`` disables the cache.
    """

    def __init__(
        self,
        engine: SToPSS,
        registry: ClientRegistry | None = None,
        notifier: NotificationEngine | None = None,
        *,
        result_cache_size: int = 256,
    ) -> None:
        self.engine = engine
        self.registry = registry if registry is not None else ClientRegistry()
        self.notifier = notifier if notifier is not None else NotificationEngine()
        #: sub_id -> subscriber client_id
        self._subscriber_of: dict[str, str] = {}
        self.reports: list[PublishReport] = []
        self.result_cache_size = result_cache_size
        #: cache key -> tuple[SemanticMatch, ...] in LRU order
        self._result_cache: OrderedDict[tuple, tuple[SemanticMatch, ...]] = OrderedDict()
        self.result_cache_hits = 0
        self.result_cache_misses = 0

    # -- subscriptions -------------------------------------------------------------

    def subscribe(self, client_id: str, subscription: Subscription) -> Subscription:
        """Record a subscription on behalf of a registered subscriber."""
        client = self.registry.get(client_id)
        if not client.kind.can_subscribe:
            raise BrokerError(f"client {client_id!r} is not a subscriber")
        bound = Subscription(
            subscription.predicates,
            subscriber_id=client_id,
            sub_id=subscription.sub_id,
            max_generality=subscription.max_generality,
        )
        self.engine.subscribe(bound)
        self._subscriber_of[bound.sub_id] = client_id
        return bound

    def unsubscribe(self, sub_id: str) -> Subscription:
        if sub_id not in self._subscriber_of:
            raise UnknownSubscriptionError(f"no subscription {sub_id!r}")
        del self._subscriber_of[sub_id]
        return self.engine.unsubscribe(sub_id)

    def subscriptions_of(self, client_id: str) -> list[Subscription]:
        return [
            sub
            for sub in self.engine.subscriptions()
            if self._subscriber_of.get(sub.sub_id) == client_id
        ]

    # -- publications ---------------------------------------------------------------

    def _matches_for(self, stamped: Event, client_id: str) -> list[SemanticMatch]:
        """The engine's match set for *stamped*, served from the result
        cache when this content was already matched under the exact
        same semantic state."""
        if self.result_cache_size <= 0:
            return self.engine.publish(stamped)
        key = (
            stamped.signature,
            client_id,
            self.engine.semantic_version,
            self.engine.config,
            self.engine.subscription_epoch,
        )
        cached = self._result_cache.get(key)
        if cached is not None:
            self._result_cache.move_to_end(key)
            self.result_cache_hits += 1
            # re-stamp onto this publication's event object so delivery
            # reports carry the real event id, not the first one's.
            return [
                SemanticMatch(
                    subscription=match.subscription,
                    event=stamped,
                    matched_via=match.matched_via,
                    generality=match.generality,
                )
                for match in cached
            ]
        self.result_cache_misses += 1
        matches = self.engine.publish(stamped)
        self._result_cache[key] = tuple(matches)
        while len(self._result_cache) > self.result_cache_size:
            self._result_cache.popitem(last=False)
        return matches

    def publish(self, client_id: str, event: Event) -> PublishReport:
        """Match *event* and notify every matched subscriber."""
        client = self.registry.get(client_id)
        if not client.kind.can_publish:
            raise BrokerError(f"client {client_id!r} is not a publisher")
        stamped = Event(event.items(), event_id=event.event_id, publisher_id=client_id)
        matches = self._matches_for(stamped, client_id)
        outcomes: list[DeliveryOutcome] = []
        for match in matches:
            subscriber_id = self._subscriber_of.get(match.subscription.sub_id)
            if subscriber_id is None:  # engine-only subscription (tests)
                continue
            subscriber: Client = self.registry.get(subscriber_id)
            outcomes.append(self.notifier.notify(subscriber, match))
        report = PublishReport(stamped, tuple(matches), tuple(outcomes))
        self.reports.append(report)
        return report

    # -- reporting ---------------------------------------------------------------------

    def result_cache_info(self) -> dict[str, object]:
        """Hit/miss/size/rate of the dispatcher-level result cache."""
        lookups = self.result_cache_hits + self.result_cache_misses
        return {
            "capacity": self.result_cache_size,
            "size": len(self._result_cache),
            "hits": self.result_cache_hits,
            "misses": self.result_cache_misses,
            "hit_rate": (self.result_cache_hits / lookups) if lookups else 0.0,
        }

    def stats(self) -> dict[str, object]:
        engine_stats = self.engine.stats()
        matcher_stats = engine_stats.get("matcher_stats", {})
        cache_info = engine_stats.get("expansion_cache", {})
        interest = engine_stats.get("interest", {})
        result_cache = self.result_cache_info()
        return {
            "clients": len(self.registry),
            "subscriptions": len(self.engine),
            "publications": len(self.reports),
            "matches": sum(r.match_count for r in self.reports),
            "deliveries": sum(r.delivered_count for r in self.reports),
            # batched publish-path headline counters, surfaced at the
            # top level so operators need not dig through the engine:
            "batches": matcher_stats.get("batches", 0),
            "probes_saved": matcher_stats.get("probes_saved", 0),
            "memo_hits": matcher_stats.get("memo_hits", 0),
            "memo_invalidations": matcher_stats.get("memo_invalidations", 0),
            "expansion_cache_hit_rate": cache_info.get("hit_rate", 0.0),
            "result_cache_hits": result_cache["hits"],
            "result_cache_hit_rate": result_cache["hit_rate"],
            "result_cache": result_cache,
            "derived_events": engine_stats.get("derived_events", 0),
            # demand-driven expansion: how much of the derived-event
            # cross-product the live interest index pruned away
            "candidates_pruned": interest.get("candidates_pruned", 0),
            "prune_hit_rate": interest.get("prune_hit_rate", 0.0),
            "interest_index_size": interest.get("interest_index_size", 0),
            "engine": engine_stats,
            "notifier": self.notifier.snapshot(),
        }

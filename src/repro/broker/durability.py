"""Durable broker state: write-ahead journal, snapshots, recovery.

PR 8 made the shard *data plane* survivable; this module makes the
broker itself survive.  The model is recovery-to-a-legal-state
(Feldmann et al.'s self-stabilizing supervised pub/sub, ``PAPERS.md``):
every state-changing broker operation — client register/remove,
subscribe/unsubscribe, reconfigure, publish — lands in an append-only,
CRC-checksummed journal, and :func:`recover` rebuilds a
:class:`~repro.broker.broker.Broker` equivalent to the uncrashed run by
replaying those records through the broker's *normal* code paths (so
shard routing, the InterestIndex, and respawn specs all rebuild for
free).

Three design rules keep recovery boring:

1. **Torn tails never refuse to start.**  A record is one line,
   ``<crc32-hex8> <canonical-json>\\n``; the reader stops at the first
   incomplete or checksum-failing line, physically truncates the
   garbage, and counts one ``torn_tail_truncations``.  A crash mid
   ``write(2)`` therefore costs at most the record being written.
2. **Snapshots compact, sequence numbers reconcile.**  Every
   ``snapshot_every`` appends the broker folds its full state into
   ``snapshot.json`` (written to a temp file, then atomically renamed)
   and restarts the journal.  Each record carries a monotonic ``i``;
   the snapshot records the last one folded in, so a crash between
   rename and truncate merely makes replay skip already-folded records.
3. **Deliveries are at-least-once, dedup'd by sequence.**  The
   notification engine journals an outbox record (with the
   per-subscription delivery sequence and the rendered message) before
   every send and an ack after; recovery replays each journaled publish,
   regenerates its matches deterministically, and reconciles them
   against the journaled outbox — already-acked sequences are dropped
   (``dedup_drops``), un-acked ones are re-sent (``replayed_deliveries``).

Fault injection reuses PR 8's :class:`~repro.broker.supervision
.FaultPlan`: a ``crash`` action at slot ``(0, append_index)`` makes the
journal write a *torn* prefix of that record and raise
:class:`~repro.errors.SimulatedCrash` — the crash-equivalence property
suite sweeps that offset across every prefix of a seeded trace.

Full prose: ``docs/DURABILITY.md``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.broker.clients import Client, ClientKind
from repro.broker.supervision import FaultPlan
from repro.core.config import SemanticConfig
from repro.errors import DurabilityError, ReproError, SimulatedCrash
from repro.model.events import Event
from repro.model.subscriptions import Subscription
from repro.ontology.serialization import (
    _decode_predicate,
    _decode_value,
    _encode_predicate,
    _encode_value,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.broker.broker import Broker
    from repro.ontology.knowledge_base import KnowledgeBase

__all__ = [
    "Durability",
    "DurabilityStats",
    "RecoveryReport",
    "recover",
    "JOURNAL_NAME",
    "SNAPSHOT_NAME",
]

JOURNAL_NAME = "journal.log"
SNAPSHOT_NAME = "snapshot.json"
FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------

class DurabilityStats:
    """Deterministic durability counters, cumulative for one
    :class:`Durability` instance (journal *and* recovery sides).
    Surfaced through ``Broker.stats()["durability"]`` and the
    :func:`~repro.metrics.aggregate.durability_summary` shape in
    ``Broker.health()``."""

    __slots__ = (
        "journal_appends",
        "journal_bytes",
        "snapshot_compactions",
        "torn_tail_truncations",
        "replayed_deliveries",
        "dedup_drops",
        "replay_skips",
    )

    def __init__(self) -> None:
        self.journal_appends = 0
        self.journal_bytes = 0
        self.snapshot_compactions = 0
        self.torn_tail_truncations = 0
        self.replayed_deliveries = 0
        self.dedup_drops = 0
        self.replay_skips = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict view (JSON-safe, ``merge_stats``-summable)."""
        return {name: getattr(self, name) for name in self.__slots__}


@dataclasses.dataclass
class RecoveryReport:
    """What :func:`recover` found and did, attached to the returned
    broker as ``broker.recovery``."""

    snapshot_loaded: bool = False
    snapshot_discarded: bool = False
    records_replayed: int = 0
    torn_tail_truncations: int = 0
    replayed_deliveries: int = 0
    dedup_drops: int = 0
    replay_skips: int = 0
    next_op_index: int = 0


# ---------------------------------------------------------------------------
# record framing: one line per record, CRC32 over the JSON body
# ---------------------------------------------------------------------------

def _encode_record(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return b"%08x " % (zlib.crc32(body) & 0xFFFFFFFF) + body + b"\n"


def _scan_records(raw: bytes) -> tuple[list[dict], int, bool]:
    """Parse *raw* journal bytes: ``(records, clean_length, torn)``.
    Stops at the first incomplete line, malformed frame, checksum
    mismatch, or non-object body — everything from there on is a torn
    tail (*clean_length* is where it starts)."""
    records: list[dict] = []
    offset = 0
    while offset < len(raw):
        end = raw.find(b"\n", offset)
        if end < 0:
            return records, offset, True
        line = raw[offset:end]
        if len(line) < 10 or line[8:9] != b" ":
            return records, offset, True
        try:
            expected = int(line[:8], 16)
        except ValueError:
            return records, offset, True
        body = line[9:]
        if zlib.crc32(body) & 0xFFFFFFFF != expected:
            return records, offset, True
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return records, offset, True
        if not isinstance(payload, dict):
            return records, offset, True
        records.append(payload)
        offset = end + 1
    return records, offset, False


# ---------------------------------------------------------------------------
# payload codecs (reuse the ontology serialization's value/predicate forms)
# ---------------------------------------------------------------------------

def _encode_config(config: SemanticConfig) -> dict:
    return dataclasses.asdict(config)


def _decode_config(data: dict) -> SemanticConfig:
    return SemanticConfig(**data)


def _encode_client(client: Client) -> dict:
    return {
        "k": "client",
        "id": client.client_id,
        "name": client.name,
        "kind": client.kind.value,
        "addr": [[transport, address] for transport, address in client.addresses],
    }


def _encode_subscription(subscription: Subscription, client_id: str) -> dict:
    return {
        "k": "sub",
        "sid": subscription.sub_id,
        "cid": client_id,
        "mg": subscription.max_generality,
        "preds": [_encode_predicate(p) for p in subscription.predicates],
    }


def _decode_subscription(data: dict) -> Subscription:
    return Subscription(
        tuple(_decode_predicate(p) for p in data["preds"]),
        sub_id=data["sid"],
        max_generality=data["mg"],
    )


def _encode_event(event: Event, client_id: str) -> dict:
    return {
        "k": "pub",
        "cid": client_id,
        "eid": event.event_id,
        "pairs": [[attribute, _encode_value(value)] for attribute, value in event.items()],
    }


def _decode_event(data: dict) -> Event:
    return Event(
        [(attribute, _decode_value(value)) for attribute, value in data["pairs"]],
        event_id=data["eid"],
    )


# ---------------------------------------------------------------------------
# the journal + snapshot store
# ---------------------------------------------------------------------------

class Durability:
    """One broker's durable store: ``journal.log`` + ``snapshot.json``
    inside *directory*.

    Parameters
    ----------
    directory: created if missing; one broker per directory.
    snapshot_every: fold state into a compacted snapshot every N
        journaled operations (``0`` disables automatic compaction;
        ``Broker.checkpoint()`` always works).
    fsync: ``True`` pays an ``fsync(2)`` per append for real crash
        durability; the default flushes to the OS only (fast, and
        exactly as strong for the in-process crash model the tests
        simulate).
    fault_plan: a :class:`~repro.broker.supervision.FaultPlan` consulted
        at slot ``(0, append_index)`` before every append; a ``crash``
        action writes a torn prefix of the record and raises
        :class:`~repro.errors.SimulatedCrash`.  Non-crash kinds in the
        slot are ignored (durability plans should schedule only
        ``crash``).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        snapshot_every: int = 1000,
        fsync: bool = False,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if snapshot_every < 0:
            raise DurabilityError("snapshot_every must be >= 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.directory / JOURNAL_NAME
        self.snapshot_path = self.directory / SNAPSHOT_NAME
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self.fault_plan = fault_plan
        self.stats = DurabilityStats()
        #: recovery replay in progress: the broker suppresses op
        #: journaling (the records being replayed already exist)
        self.replay_active = False
        self._crashed = False
        self._handle = None
        self._seq = 0  # last record sequence number assigned
        self._append_index = 0  # lifetime fault-plan offset axis
        self._ops_since_snapshot = 0

    # -- introspection ---------------------------------------------------------

    @property
    def has_state(self) -> bool:
        """Does the directory already hold durable state?  A fresh
        ``Broker(durability=...)`` refuses such a directory — that state
        belongs to :func:`recover`."""
        if self.snapshot_path.exists():
            return True
        try:
            return self.journal_path.stat().st_size > 0
        except OSError:
            return False

    @property
    def last_seq(self) -> int:
        return self._seq

    # -- appending -------------------------------------------------------------

    def _open(self):
        if self._handle is None:
            self._handle = open(self.journal_path, "ab")
        return self._handle

    def append(self, payload: dict) -> int:
        """Journal one record (the ``i`` sequence field is stamped
        here); returns its sequence number.  An injected ``crash``
        writes a torn prefix instead and raises
        :class:`~repro.errors.SimulatedCrash`."""
        if self._crashed:
            raise DurabilityError(
                "journal crashed (SimulatedCrash fired); recover() the directory"
            )
        record = dict(payload)
        record["i"] = self._seq + 1
        data = _encode_record(record)
        index = self._append_index
        self._append_index += 1
        fault = self.fault_plan.take(0, index) if self.fault_plan is not None else None
        handle = self._open()
        if fault == "crash":
            handle.write(data[: len(data) // 2])
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self._crashed = True
            raise SimulatedCrash(f"simulated crash at journal append {index}")
        handle.write(data)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self._seq = record["i"]
        self.stats.journal_appends += 1
        self.stats.journal_bytes += len(data)
        return self._seq

    def note_op(self) -> None:
        """Count one broker-level operation toward auto-compaction."""
        self._ops_since_snapshot += 1

    def should_compact(self) -> bool:
        return (
            self.snapshot_every > 0
            and not self.replay_active
            and not self._crashed
            and self._ops_since_snapshot >= self.snapshot_every
        )

    # -- snapshots ---------------------------------------------------------------

    def compact(self, state: dict) -> None:
        """Fold *state* (the broker's full durable state) into an
        atomically-replaced snapshot, then restart the journal.  Safe
        against a crash at any point: replay skips journal records whose
        sequence the snapshot already folded in."""
        if self._crashed:
            raise DurabilityError("journal crashed; recover() the directory")
        payload = {"format": FORMAT_VERSION, "last_seq": self._seq, "state": state}
        tmp_path = self.snapshot_path.with_suffix(".tmp")
        with open(tmp_path, "wb") as handle:
            handle.write(_encode_record(payload))
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, self.snapshot_path)
        self.close()
        with open(self.journal_path, "wb"):
            pass  # truncate: everything up to last_seq now lives in the snapshot
        self.stats.snapshot_compactions += 1
        self._ops_since_snapshot = 0

    def load_snapshot(self) -> tuple[dict | None, bool]:
        """``(snapshot_payload, discarded)`` — a missing snapshot is
        ``(None, False)``; an unreadable one is ``(None, True)`` (never
        refuse to start)."""
        try:
            raw = self.snapshot_path.read_bytes()
        except OSError:
            return None, False
        records, _, torn = _scan_records(raw)
        if torn or len(records) != 1 or records[0].get("format") != FORMAT_VERSION:
            return None, True
        return records[0], False

    # -- reading / attaching ------------------------------------------------------

    def attach(self) -> tuple[dict | None, list[dict], bool]:
        """Open existing state for recovery: load the snapshot, read the
        journal (skipping records the snapshot already folded in),
        physically truncate any torn tail, and position the sequence
        counter so new appends continue the stream.  Returns
        ``(snapshot, journal_records, snapshot_discarded)``."""
        snapshot, discarded = self.load_snapshot()
        floor = snapshot["last_seq"] if snapshot is not None else 0
        try:
            raw = self.journal_path.read_bytes()
        except OSError:
            raw = b""
        records, clean_length, torn = _scan_records(raw)
        if torn:
            with open(self.journal_path, "r+b") as handle:
                handle.truncate(clean_length)
            self.stats.torn_tail_truncations += 1
        records = [record for record in records if record.get("i", 0) > floor]
        self._seq = max(floor, records[-1]["i"] if records else 0)
        return snapshot, records, discarded

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------

def recover(
    directory: str | os.PathLike,
    kb: "KnowledgeBase",
    *,
    broker_factory: Callable | None = None,
    snapshot_every: int = 1000,
    fsync: bool = False,
    **broker_kwargs,
) -> "Broker":
    """Rebuild a broker from the durable state in *directory*.

    The snapshot restores the compacted baseline (clients,
    subscriptions, configuration, delivery sequences); the journal tail
    then replays *through the normal broker paths* — churn through
    ``subscribe``/``unsubscribe`` (so a sharded engine re-routes and
    re-indexes exactly as live traffic would), publishes through
    ``publish`` with the notification engine reconciling regenerated
    matches against the journaled outbox: acked sequences are dropped
    (``dedup_drops``), un-acked ones re-sent (``replayed_deliveries``).
    Journaled records that failed to apply live (e.g. a rejected
    publish) fail identically on replay and are skipped, which also
    covers a partially-applied final record.  An empty directory
    recovers to a fresh durable broker.

    *broker_factory* defaults to :class:`~repro.broker.broker.Broker`;
    pass e.g. ``lambda kb, **kw: ShardedBroker(kb, shards=4, **kw)`` to
    recover into a sharded deployment.  Non-journaled construction
    parameters (matcher, initial config, shard count) are the caller's
    to repeat via the factory / *broker_kwargs*.

    Returns the broker, with a :class:`RecoveryReport` attached as
    ``broker.recovery``.
    """
    from repro.broker.broker import Broker

    durability = Durability(directory, snapshot_every=snapshot_every, fsync=fsync)
    snapshot, records, snapshot_discarded = durability.attach()
    report = RecoveryReport(
        snapshot_loaded=snapshot is not None,
        snapshot_discarded=snapshot_discarded,
        torn_tail_truncations=durability.stats.torn_tail_truncations,
    )
    durability.replay_active = True
    factory = broker_factory if broker_factory is not None else Broker
    broker = factory(kb, durability=durability, **broker_kwargs)
    try:
        # 1. the compacted baseline
        if snapshot is not None:
            state = snapshot["state"]
            if state.get("config") is not None:
                broker.engine.reconfigure(_decode_config(state["config"]))
            for entry in state.get("clients", ()):
                broker.registry.register(
                    entry["name"],
                    kind=ClientKind(entry["kind"]),
                    addresses=tuple((t, a) for t, a in entry["addr"]),
                    client_id=entry["id"],
                )
            for entry in state.get("subscriptions", ()):
                broker.dispatcher.subscribe(entry["cid"], _decode_subscription(entry))
            broker.notifier.restore(state.get("notifier", {}))
            broker._op_index = state.get("next_op_index", 0)

        # 2. delivery ledger from the journal tail: what was outboxed
        #    and what was acked, per subscription in append order
        ledger: dict[str, list] = {}
        for record in records:
            kind = record["k"]
            if kind == "out":
                entry = broker.notifier.adopt_journal_entry(record)
                ledger.setdefault(record["sid"], []).append(entry)
            elif kind == "ack":
                broker.notifier.settle_journal_entry(
                    record["sid"], record["n"], delivered=record["ok"]
                )
        broker.notifier.begin_replay(ledger, durability.stats)

        # 3. replay the operation records through the normal paths
        for record in records:
            kind = record["k"]
            try:
                if kind == "client":
                    broker.registry.register(
                        record["name"],
                        kind=ClientKind(record["kind"]),
                        addresses=tuple((t, a) for t, a in record["addr"]),
                        client_id=record["id"],
                    )
                elif kind == "remove":
                    broker.remove_client(record["id"])
                elif kind == "sub":
                    broker.subscribe(record["cid"], _decode_subscription(record))
                elif kind == "unsub":
                    broker.unsubscribe(record["sid"])
                elif kind == "config":
                    broker.engine.reconfigure(_decode_config(record["cfg"]))
                elif kind == "pub":
                    broker.publish(record["cid"], _decode_event(record))
            except ReproError:
                # the same operation failed the same way live (or only
                # half-applied before the crash); deterministic replay
                # converges to the same state by skipping it
                durability.stats.replay_skips += 1
            if kind in ("client", "remove", "sub", "unsub", "config", "pub"):
                report.records_replayed += 1
                if "oi" in record:
                    broker._op_index = max(broker._op_index, record["oi"] + 1)

        # 4. anything journaled-but-unacked that replay did not
        #    regenerate (snapshot-compacted publishes, divergent tails)
        #    is re-sent straight from the stored rendered message
        broker.notifier.finish_replay(broker.registry)
    finally:
        durability.replay_active = False
    report.replayed_deliveries = durability.stats.replayed_deliveries
    report.dedup_drops = durability.stats.dedup_drops
    report.replay_skips = durability.stats.replay_skips
    report.next_op_index = broker._op_index
    broker.recovery = report
    return broker

"""Supervision substrate for the cross-process shard data plane.

PR 7's worker-process fleet made the sharded publish path fast; this
module makes it survivable.  The model is the supervised
self-stabilizing topology maintenance of Feldmann et al. and VCube-PS's
fault-tolerant delivery (both in ``PAPERS.md``): the worker fleet is a
*disposable cache* of the parent's control-plane replicas, so correct
recovery from any worker failure is always one rebuild away — the
supervisor's whole job is to converge back to a healthy fleet without
ever failing a publish.

Three cooperating pieces, all deterministic and dependency-free:

:class:`SupervisionPolicy`
    The knobs — per-op retry budget, bounded exponential backoff with
    seeded jitter, and the circuit-breaker threshold/cooldown.  One
    frozen value object threaded from ``ShardedEngine`` down into the
    data plane.

:class:`CircuitBreaker`
    One per shard.  Counts *consecutive* transport failures; at the
    threshold it opens and the shard's publishes route inline through
    the parent replica (always-correct degraded mode) until the
    cooldown elapses, after which a single half-open probe decides
    between closing and re-opening.  The clock is injectable so the
    state machine unit-tests without sleeping.

:class:`FaultPlan`
    Deterministic fault injection for tests, benchmarks, and
    ``stopss demo --chaos``.  A plan is a finite schedule of
    :class:`FaultAction` records — *kill this worker before its Nth
    op*, *drop this reply*, *corrupt this wire payload*, … — consumed
    exactly once each by the data plane's send path.
    :meth:`FaultPlan.seeded` derives a schedule from one integer seed,
    so a chaos run is reproducible from its seed alone.

:class:`SupervisionStats` is the observable surface: deterministic
counters (``worker_restarts``, ``publish_retries``,
``degraded_publishes``, ``breaker_opens``, ``snapshot_fallbacks``) that
flow through ``sharding_info()`` / ``merge_stats`` into the
``stopss demo`` health table.  The chaos leg of the sharding
equivalence suite asserts they are non-zero exactly when faults fired.

Full prose: ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigError

__all__ = [
    "DATA_PLANE_FAULT_KINDS",
    "FAULT_KINDS",
    "CircuitBreaker",
    "FaultAction",
    "FaultPlan",
    "SupervisionPolicy",
    "SupervisionStats",
]

#: the fault kinds the shard data plane knows how to inject, in one
#: place so plans validate against the implementation rather than a
#: stale list.
#:
#: ``kill``      SIGKILL the worker just before the op is sent.
#: ``hang``      treat the worker as hung: the op is sent but the reply
#:               deadline expires immediately (exercises the timeout →
#:               respawn path without waiting out a real timeout).
#: ``drop``      the op is sent but its reply is abandoned unread
#:               (exercises epoch-stale discard on the retry).
#: ``corrupt``   the publish payload is replaced with garbage on the
#:               wire (the worker answers ``badwire``; retry resends the
#:               clean payload).
#: ``snapshot``  kill the worker *and* corrupt the shared-memory
#:               snapshot descriptor handed to its replacement, forcing
#:               the respawned worker onto the local-fill fallback.
DATA_PLANE_FAULT_KINDS = ("kill", "hang", "drop", "corrupt", "snapshot")

#: every valid fault kind.  ``crash`` is consumed by the durability
#: layer, not the data plane: the journal writes a *torn* record (a
#: realistic partial ``write(2)``) and raises
#: :class:`~repro.errors.SimulatedCrash`, killing the whole broker at a
#: chosen journal-append offset (shard axis 0, op axis = append index).
#: The data plane ignores a ``crash`` slot it happens to consume, so
#: keep durability plans separate from data-plane plans.
FAULT_KINDS = DATA_PLANE_FAULT_KINDS + ("crash",)


@dataclass(frozen=True)
class SupervisionPolicy:
    """How hard the data plane fights for a shard before degrading.

    ``max_retries`` bounds re-sends of one op after its first failed
    attempt; between re-sends the supervisor sleeps an exponential
    backoff (``backoff_base * backoff_factor**k``, capped at
    ``backoff_max``) with ``jitter``-fraction randomization from a
    ``seed``-determined stream, so two planes never thundering-herd
    their respawns yet any single run replays exactly.

    ``breaker_threshold`` consecutive transport failures open a shard's
    circuit breaker; while open, that shard's publishes run inline on
    the parent replica (degraded mode) with no worker traffic at all,
    and after ``breaker_cooldown`` seconds one half-open probe decides
    whether to close it again.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.5
    breaker_threshold: int = 3
    breaker_cooldown: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base < 0.0 or self.backoff_max < 0.0:
            raise ConfigError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be within [0, 1]")
        if self.breaker_threshold < 1:
            raise ConfigError("breaker_threshold must be >= 1")
        if self.breaker_cooldown < 0.0:
            raise ConfigError("breaker_cooldown must be >= 0")

    def backoff_delay(self, failures: int, rng: random.Random) -> float:
        """Backoff before re-send number *failures* (1-based), jittered
        from *rng* — the caller owns the stream so delays replay under a
        fixed policy seed."""
        delay = min(self.backoff_max, self.backoff_base * self.backoff_factor ** (failures - 1))
        if self.jitter and delay:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


class CircuitBreaker:
    """Per-shard breaker: closed → open after N consecutive failures →
    half-open probe after the cooldown → closed on success, re-open on
    failure.

    Single-threaded by design (the data plane serializes all shard
    traffic), so state transitions need no locking.  *clock* is
    injectable for tests; production uses ``time.monotonic``.
    """

    def __init__(
        self,
        threshold: int,
        cooldown: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ConfigError("breaker threshold must be >= 1")
        self._threshold = threshold
        self._cooldown = cooldown
        self._clock = clock
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` (an open breaker
        whose cooldown elapsed reports half-open once probed)."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def allow(self) -> bool:
        """May the caller contact the worker right now?  An open breaker
        answers no until the cooldown elapses, then transitions to
        half-open and admits exactly the probe attempt."""
        if self._state == "open":
            if self._clock() - self._opened_at < self._cooldown:
                return False
            self._state = "half-open"
        return True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._state = "closed"

    def record_failure(self) -> bool:
        """Count one transport failure; returns True when this failure
        *opened* the breaker (a failed half-open probe re-opens and
        counts as a fresh open — the cooldown restarts)."""
        self._consecutive_failures += 1
        should_open = (
            self._state == "half-open"
            or self._consecutive_failures >= self._threshold
        )
        if should_open and self._state != "open":
            self._state = "open"
            self._opened_at = self._clock()
            return True
        if should_open:
            # already open (failures kept arriving while cooling down —
            # e.g. control forwards); push the cooldown out, not a new open
            self._opened_at = self._clock()
        return False


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: inject *kind* on shard *shard* at its
    *op*-th data-plane send (0-based, counted per shard across every op
    type — publishes, forwarded churn, stats, retries)."""

    kind: str
    shard: int
    op: int

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r} (expected one of {list(FAULT_KINDS)})"
            )
        if self.shard < 0 or self.op < 0:
            raise ConfigError("fault shard and op indexes must be >= 0")


class FaultPlan:
    """A finite, deterministic schedule of injected faults.

    The data plane consults :meth:`take` before every send; each
    scheduled action fires exactly once.  Build a plan explicitly from
    :class:`FaultAction` records when a test needs a precise scenario,
    or from :meth:`seeded` when a single reproducible integer seed
    should drive a whole chaos run (the property suite, the chaos-soak
    CI job, ``stopss demo --chaos``).
    """

    def __init__(self, actions: Iterable[FaultAction] = ()) -> None:
        self._pending: dict[tuple[int, int], str] = {}
        for action in actions:
            slot = (action.shard, action.op)
            if slot in self._pending:
                raise ConfigError(
                    f"duplicate fault slot shard={action.shard} op={action.op}"
                )
            self._pending[slot] = action.kind
        self._planned = len(self._pending)
        #: kind -> times fired, for reporting (``stopss demo --chaos``)
        self.fired: dict[str, int] = {}

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        shards: int,
        ops: int,
        rate: float = 0.15,
        faults: int | None = None,
        kinds: Sequence[str] = DATA_PLANE_FAULT_KINDS,
    ) -> "FaultPlan":
        """A reproducible schedule over the first *ops* sends of each of
        *shards* shards: *faults* slots (default ``rate`` of the grid,
        at least one) chosen and assigned kinds by ``random.Random(seed)``
        — same seed, same plan, on every machine and run.  The default
        *kinds* are the data-plane five; pass ``("crash",)`` to seed a
        durability crash schedule."""
        if shards < 1 or ops < 1:
            raise ConfigError("a seeded plan needs shards >= 1 and ops >= 1")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigError(f"unknown fault kind {kind!r}")
        if faults is None:
            faults = max(1, round(rate * shards * ops))
        if not 0 <= faults <= shards * ops:
            raise ConfigError("fault count must fit the shards x ops grid")
        rng = random.Random(seed)
        slots = rng.sample(
            [(shard, op) for shard in range(shards) for op in range(ops)], faults
        )
        return cls(
            FaultAction(rng.choice(list(kinds)), shard, op)
            for shard, op in sorted(slots)
        )

    @classmethod
    def crash_at(cls, *offsets: int) -> "FaultPlan":
        """A durability plan: :class:`~repro.errors.SimulatedCrash` at
        each journal-append *offset* (0-based).  The journal consults
        slot ``(0, append_index)`` before every append, so this is the
        precise "kill the broker at journal offset N" construction the
        crash-equivalence suite sweeps."""
        return cls(FaultAction("crash", 0, offset) for offset in offsets)

    @property
    def planned(self) -> int:
        """Total actions this plan started with."""
        return self._planned

    @property
    def pending(self) -> int:
        """Actions not yet fired."""
        return len(self._pending)

    def take(self, shard: int, op: int) -> str | None:
        """The fault kind scheduled for this (shard, op) send, consumed
        so it fires at most once; None when the slot is clean."""
        kind = self._pending.pop((shard, op), None)
        if kind is not None:
            self.fired[kind] = self.fired.get(kind, 0) + 1
        return kind


class SupervisionStats:
    """Deterministic recovery counters, cumulative for one
    :class:`~repro.broker.sharding.ShardedEngine` across every worker
    fleet it builds (the plane is disposable; these outlive it).

    Summed across engines by
    :func:`~repro.metrics.aggregate.merge_stats` like any other counter
    group, and surfaced as ``sharding_info()["supervision"]`` — the
    ``stopss demo`` health columns and the chaos acceptance assertions
    (non-zero under faults, zero on a clean run) both read this
    snapshot.
    """

    __slots__ = (
        "worker_restarts",
        "publish_retries",
        "degraded_publishes",
        "breaker_opens",
        "snapshot_fallbacks",
        "stale_replies_discarded",
        "restart_seconds",
    )

    def __init__(self) -> None:
        self.worker_restarts = 0
        self.publish_retries = 0
        self.degraded_publishes = 0
        self.breaker_opens = 0
        self.snapshot_fallbacks = 0
        self.stale_replies_discarded = 0
        self.restart_seconds = 0.0

    def snapshot(self) -> dict[str, int | float]:
        """Plain-dict view (JSON-safe, ``merge_stats``-summable)."""
        return {name: getattr(self, name) for name in self.__slots__}

    @property
    def recoveries(self) -> int:
        """Total recovery interventions of any kind — the one number
        that must be zero on a clean run."""
        return (
            self.worker_restarts
            + self.publish_retries
            + self.degraded_publishes
            + self.breaker_opens
        )

"""The notification engine: match → subscriber delivery (Figure 2).

"When the incoming event verifies a subscription, the event dispatcher
sends a notification to the corresponding subscriber" (paper §1).  This
engine owns that last hop: it renders a :class:`SemanticMatch` into a
message, walks the subscriber's transport preferences, retries
transient failures with bounded attempts, and journals every outcome.
Undeliverable notifications land in a dead-letter list instead of
failing the publish path — a slow SMS gateway must not stall the
matcher.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.broker.clients import Client
from repro.broker.transports import (
    DeliveryRecord,
    OutboundMessage,
    SmsTransport,
    TransportRegistry,
    default_transports,
)
from repro.core.provenance import SemanticMatch
from repro.errors import DeliveryError, TransportError

__all__ = ["Notification", "NotificationEngine", "DeliveryOutcome"]

_notification_counter = itertools.count(1)


@dataclass(frozen=True)
class Notification:
    """A match destined for one subscriber."""

    notification_id: str
    client: Client
    match: SemanticMatch

    @classmethod
    def for_match(cls, client: Client, match: SemanticMatch) -> "Notification":
        return cls(f"n{next(_notification_counter)}", client, match)

    def subject(self) -> str:
        return (
            f"S-ToPSS: subscription {self.match.subscription.sub_id} matched "
            f"event {self.match.event.event_id}"
        )

    def body(self) -> str:
        return self.match.explain()


@dataclass(frozen=True)
class DeliveryOutcome:
    """Final fate of one notification."""

    notification: Notification
    record: DeliveryRecord | None
    attempts: int
    delivered: bool
    transport: str = ""
    error: str = ""


@dataclass
class _EngineStats:
    notifications: int = 0
    delivered: int = 0
    dead_lettered: int = 0
    retries: int = 0
    fallbacks: int = 0
    per_transport: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> dict[str, object]:
        return {
            "notifications": self.notifications,
            "delivered": self.delivered,
            "dead_lettered": self.dead_lettered,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "per_transport": dict(self.per_transport),
        }


class NotificationEngine:
    """Multi-transport notification delivery with retry and fallback.

    Parameters
    ----------
    transports: the transport registry (defaults to the demo's four).
    max_attempts_per_transport: bounded retries for transient failures.
    raise_on_dead_letter: tests may prefer a loud
        :class:`~repro.errors.DeliveryError` over silent dead-lettering.
    """

    def __init__(
        self,
        transports: TransportRegistry | None = None,
        *,
        max_attempts_per_transport: int = 3,
        raise_on_dead_letter: bool = False,
    ) -> None:
        self.transports = transports if transports is not None else default_transports()
        if max_attempts_per_transport < 1:
            raise DeliveryError("max_attempts_per_transport must be >= 1")
        self.max_attempts = max_attempts_per_transport
        self.raise_on_dead_letter = raise_on_dead_letter
        self.outcomes: list[DeliveryOutcome] = []
        self.dead_letters: list[Notification] = []
        self.stats = _EngineStats()

    # -- delivery --------------------------------------------------------------

    def notify(self, client: Client, match: SemanticMatch) -> DeliveryOutcome:
        """Render and deliver one match to one subscriber."""
        notification = Notification.for_match(client, match)
        self.stats.notifications += 1
        attempts = 0
        last_error = ""
        preferences = client.preferred_transports()
        if not preferences:
            outcome = DeliveryOutcome(notification, None, 0, False, error="client has no addresses")
            return self._finish(outcome)
        for position, transport_name in enumerate(preferences):
            if transport_name not in self.transports:
                last_error = f"unknown transport {transport_name!r}"
                continue
            if position > 0:
                self.stats.fallbacks += 1
            transport = self.transports.get(transport_name)
            address = client.address_for(transport_name) or ""
            subject, body = notification.subject(), notification.body()
            if isinstance(transport, SmsTransport):
                body = SmsTransport.render(subject, body)
            for attempt in range(1, self.max_attempts + 1):
                attempts += 1
                if attempt > 1:
                    self.stats.retries += 1
                message = OutboundMessage(
                    transport=transport_name,
                    address=address,
                    subject=subject,
                    body=body,
                    notification_id=notification.notification_id,
                    attempt=attempt,
                )
                try:
                    record = transport.send(message)
                except TransportError as exc:
                    last_error = str(exc)
                    continue
                # UDP "drops" are successful sends from the engine's
                # perspective: fire-and-forget semantics.
                outcome = DeliveryOutcome(
                    notification,
                    record,
                    attempts,
                    True,
                    transport=transport_name,
                )
                self.stats.delivered += 1
                self.stats.per_transport[transport_name] = (
                    self.stats.per_transport.get(transport_name, 0) + 1
                )
                return self._finish(outcome)
        outcome = DeliveryOutcome(notification, None, attempts, False, error=last_error)
        return self._finish(outcome)

    def _finish(self, outcome: DeliveryOutcome) -> DeliveryOutcome:
        self.outcomes.append(outcome)
        if not outcome.delivered:
            self.dead_letters.append(outcome.notification)
            self.stats.dead_lettered += 1
            if self.raise_on_dead_letter:
                raise DeliveryError(
                    f"notification {outcome.notification.notification_id} "
                    f"undeliverable: {outcome.error}"
                )
        return outcome

    # -- reporting ----------------------------------------------------------------

    def delivered_to(self, client_id: str) -> list[DeliveryOutcome]:
        """Delivery outcomes for one subscriber, in order."""
        return [
            outcome
            for outcome in self.outcomes
            if outcome.notification.client.client_id == client_id and outcome.delivered
        ]

    def snapshot(self) -> dict[str, object]:
        data = self.stats.snapshot()
        data["transports"] = self.transports.stats()
        return data

    def reset(self) -> None:
        self.outcomes.clear()
        self.dead_letters.clear()
        self.stats = _EngineStats()
        self.transports.reset()

"""The notification engine: match → subscriber delivery (Figure 2).

"When the incoming event verifies a subscription, the event dispatcher
sends a notification to the corresponding subscriber" (paper §1).  This
engine owns that last hop: it renders a :class:`SemanticMatch` into a
message, walks the subscriber's transport preferences, retries
transient failures with bounded attempts, and journals every outcome.
Undeliverable notifications land in a dead-letter list instead of
failing the publish path — a slow SMS gateway must not stall the
matcher.

Delivery is *at-least-once with per-subscription sequences*: every
notification carries a monotonic ``sequence`` scoped to its
subscription, the engine keeps a bounded per-subscription delivery log,
and — when the broker is durable — an outbox record is journaled before
each send and an ack after, so crash recovery can reconcile regenerated
matches against what actually went out (already-acked sequences are
dropped, un-acked ones re-sent).  ``replay_from`` re-delivers the
retained log from a sequence number for reconnecting subscribers, who
dedup by ``(sub_id, sequence)``.

The notification-id counter is engine-owned (not module-global) and
restorable from a snapshot, so ids stay unique across a crash-restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.broker.clients import Client
from repro.broker.transports import (
    DeliveryRecord,
    OutboundMessage,
    SmsTransport,
    TransportRegistry,
    default_transports,
)
from repro.core.provenance import SemanticMatch
from repro.errors import DeliveryError, TransportError, UnknownClientError

__all__ = ["Notification", "NotificationEngine", "DeliveryOutcome", "DeliveryEntry"]


@dataclass(frozen=True)
class Notification:
    """A match destined for one subscriber, stamped with its
    subscription-scoped delivery sequence."""

    notification_id: str
    client: Client
    match: SemanticMatch | None
    sub_id: str = ""
    sequence: int = 0

    def subject(self) -> str:
        if self.match is None:  # replayed from the journal: pre-rendered
            return f"S-ToPSS: replay of {self.notification_id}"
        return (
            f"S-ToPSS: subscription {self.match.subscription.sub_id} matched "
            f"event {self.match.event.event_id}"
        )

    def body(self) -> str:
        return "" if self.match is None else self.match.explain()


@dataclass(frozen=True)
class DeliveryOutcome:
    """Final fate of one notification."""

    notification: Notification
    record: DeliveryRecord | None
    attempts: int
    delivered: bool
    transport: str = ""
    error: str = ""


@dataclass
class DeliveryEntry:
    """One row of the per-subscription delivery log: everything needed
    to re-send without the original match object (the journal stores the
    rendered message, so replay works across restarts)."""

    sequence: int
    notification_id: str
    client_id: str
    event_id: str
    subject: str
    body: str
    status: str = "pending"  # pending | acked | dead


@dataclass
class _EngineStats:
    notifications: int = 0
    delivered: int = 0
    dead_lettered: int = 0
    retries: int = 0
    fallbacks: int = 0
    history_evictions: int = 0
    per_transport: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> dict[str, object]:
        return {
            "notifications": self.notifications,
            "delivered": self.delivered,
            "dead_lettered": self.dead_lettered,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "history_evictions": self.history_evictions,
            "per_transport": dict(self.per_transport),
        }


class NotificationEngine:
    """Multi-transport notification delivery with retry and fallback.

    Parameters
    ----------
    transports: the transport registry (defaults to the demo's four).
    max_attempts_per_transport: bounded retries for transient failures.
    raise_on_dead_letter: tests may prefer a loud
        :class:`~repro.errors.DeliveryError` over silent dead-lettering.
    history_limit: capacity of the outcome journal, the dead-letter
        list, and each subscription's delivery log; the oldest entry is
        evicted at capacity (counted in ``history_evictions``), which
        also bounds how far back ``replay_from`` can reach.
    durability: the broker's :class:`~repro.broker.durability
        .Durability` store, when deliveries should be journaled
        (outbox-before-send, ack-after).
    """

    def __init__(
        self,
        transports: TransportRegistry | None = None,
        *,
        max_attempts_per_transport: int = 3,
        raise_on_dead_letter: bool = False,
        history_limit: int = 1024,
        durability=None,
    ) -> None:
        self.transports = transports if transports is not None else default_transports()
        if max_attempts_per_transport < 1:
            raise DeliveryError("max_attempts_per_transport must be >= 1")
        if history_limit < 1:
            raise DeliveryError("history_limit must be >= 1")
        self.max_attempts = max_attempts_per_transport
        self.raise_on_dead_letter = raise_on_dead_letter
        self.history_limit = history_limit
        self.durability = durability
        self.outcomes: list[DeliveryOutcome] = []
        self.dead_letters: list[Notification] = []
        self.stats = _EngineStats()
        #: engine-owned, snapshot-restorable id counter (a module global
        #: would restart at 1 after recovery and collide)
        self._next_notification = 1
        self._next_seq: dict[str, int] = {}
        self._delivery_log: dict[str, list[DeliveryEntry]] = {}
        self._frontier: dict[str, int] = {}
        #: pending entries restored from a snapshot (their publishes were
        #: compacted away, so recovery re-sends them directly)
        self._restored_pending: list[tuple[str, DeliveryEntry]] = []
        self._replay_ledger: dict[str, list[DeliveryEntry]] | None = None
        self._replay_stats = None

    # -- bounded history ---------------------------------------------------------

    def _bounded_append(self, store, item) -> None:
        if len(store) >= self.history_limit:
            del store[0]
            self.stats.history_evictions += 1
        store.append(item)

    def _log_entry(self, sub_id: str, entry: DeliveryEntry) -> None:
        log = self._delivery_log.setdefault(sub_id, [])
        self._bounded_append(log, entry)

    # -- delivery --------------------------------------------------------------

    def notify(self, client: Client, match: SemanticMatch) -> DeliveryOutcome:
        """Render and deliver one match to one subscriber.  During
        crash-recovery replay, regenerated matches are reconciled
        against the journaled outbox instead of blindly re-sent."""
        sub_id = match.subscription.sub_id
        if self._replay_ledger is not None:
            queue = self._replay_ledger.get(sub_id)
            if queue:
                entry = queue.pop(0)
                notification = Notification(
                    entry.notification_id, client, match, sub_id=sub_id, sequence=entry.sequence
                )
                if entry.status != "pending":
                    # the uncrashed run already settled this sequence:
                    # idempotent redelivery drops it
                    self._replay_stats.dedup_drops += 1
                    return DeliveryOutcome(
                        notification, None, 0, entry.status == "acked", transport="journal"
                    )
                outcome = self._walk_transports(notification, entry.subject, entry.body)
                self._replay_stats.replayed_deliveries += 1
                self._settle(sub_id, entry, outcome.delivered)
                return self._finish(outcome)
            # no journaled outbox for this match: the crash hit before
            # the send started — fall through to a fresh delivery
        sequence = self._next_seq.get(sub_id, 1)
        self._next_seq[sub_id] = sequence + 1
        notification = Notification(
            f"n{self._next_notification}", client, match, sub_id=sub_id, sequence=sequence
        )
        self._next_notification += 1
        subject, body = notification.subject(), notification.body()
        entry = DeliveryEntry(
            sequence,
            notification.notification_id,
            client.client_id,
            match.event.event_id,
            subject,
            body,
        )
        self._log_entry(sub_id, entry)
        if self.durability is not None:
            self.durability.append(
                {
                    "k": "out",
                    "sid": sub_id,
                    "n": sequence,
                    "nid": notification.notification_id,
                    "cid": client.client_id,
                    "eid": entry.event_id,
                    "subject": subject,
                    "body": body,
                }
            )
        outcome = self._walk_transports(notification, subject, body)
        if self._replay_stats is not None:
            self._replay_stats.replayed_deliveries += 1
        self._settle(sub_id, entry, outcome.delivered)
        return self._finish(outcome)

    def _settle(self, sub_id: str, entry: DeliveryEntry, delivered: bool) -> None:
        """Terminal bookkeeping for one send: log status, delivered
        frontier, and the journaled ack (``ok=False`` marks a
        dead-letter terminal so recovery never re-sends it either)."""
        entry.status = "acked" if delivered else "dead"
        if delivered:
            self._frontier[sub_id] = max(self._frontier.get(sub_id, 0), entry.sequence)
        if self.durability is not None:
            self.durability.append(
                {"k": "ack", "sid": sub_id, "n": entry.sequence, "ok": delivered}
            )

    def _walk_transports(
        self, notification: Notification, subject: str, rendered_body: str
    ) -> DeliveryOutcome:
        """The transport-preference walk with bounded retries; returns
        the outcome without recording it (callers settle + finish)."""
        client = notification.client
        self.stats.notifications += 1
        attempts = 0
        last_error = ""
        preferences = client.preferred_transports()
        if not preferences:
            return DeliveryOutcome(notification, None, 0, False, error="client has no addresses")
        for position, transport_name in enumerate(preferences):
            if transport_name not in self.transports:
                last_error = f"unknown transport {transport_name!r}"
                continue
            if position > 0:
                self.stats.fallbacks += 1
            transport = self.transports.get(transport_name)
            address = client.address_for(transport_name) or ""
            body = rendered_body
            if isinstance(transport, SmsTransport):
                body = SmsTransport.render(subject, body)
            for attempt in range(1, self.max_attempts + 1):
                attempts += 1
                if attempt > 1:
                    self.stats.retries += 1
                message = OutboundMessage(
                    transport=transport_name,
                    address=address,
                    subject=subject,
                    body=body,
                    notification_id=notification.notification_id,
                    attempt=attempt,
                )
                try:
                    record = transport.send(message)
                except TransportError as exc:
                    last_error = str(exc)
                    continue
                # UDP "drops" are successful sends from the engine's
                # perspective: fire-and-forget semantics.
                self.stats.delivered += 1
                self.stats.per_transport[transport_name] = (
                    self.stats.per_transport.get(transport_name, 0) + 1
                )
                return DeliveryOutcome(
                    notification, record, attempts, True, transport=transport_name
                )
        return DeliveryOutcome(notification, None, attempts, False, error=last_error)

    def _finish(self, outcome: DeliveryOutcome) -> DeliveryOutcome:
        self._bounded_append(self.outcomes, outcome)
        if not outcome.delivered:
            self._bounded_append(self.dead_letters, outcome.notification)
            self.stats.dead_lettered += 1
            if self.raise_on_dead_letter:
                raise DeliveryError(
                    f"notification {outcome.notification.notification_id} "
                    f"undeliverable: {outcome.error}"
                )
        return outcome

    # -- replay-from-sequence ------------------------------------------------------

    def replay_from(self, sub_id: str, sequence: int, registry) -> list[DeliveryOutcome]:
        """Re-deliver every retained delivery-log entry for *sub_id*
        with ``sequence >= sequence`` (a reconnecting subscriber's
        catch-up; it dedups by sequence number).  Still-pending entries
        are settled by their re-send; already-settled ones keep their
        status.  Bounded by ``history_limit`` — evicted entries are
        gone."""
        outcomes = []
        for entry in list(self._delivery_log.get(sub_id, ())):
            if entry.sequence < sequence:
                continue
            outcomes.append(self._redeliver(sub_id, entry, registry))
        return outcomes

    def _redeliver(self, sub_id: str, entry: DeliveryEntry, registry) -> DeliveryOutcome:
        """Re-send one journaled delivery from its stored rendered
        message (no match object needed)."""
        notification = Notification(
            entry.notification_id, None, None, sub_id=sub_id, sequence=entry.sequence
        )
        try:
            client = registry.get(entry.client_id)
        except UnknownClientError:
            outcome = DeliveryOutcome(
                notification, None, 0, False, error=f"client {entry.client_id!r} removed"
            )
            if entry.status == "pending":
                self._settle(sub_id, entry, False)
            return outcome
        notification = Notification(
            entry.notification_id, client, None, sub_id=sub_id, sequence=entry.sequence
        )
        outcome = self._walk_transports(notification, entry.subject, entry.body)
        if self.durability is not None:
            self.durability.stats.replayed_deliveries += 1
        if entry.status == "pending":
            self._settle(sub_id, entry, outcome.delivered)
        return outcome

    # -- crash-recovery protocol (driven by durability.recover) --------------------

    def adopt_journal_entry(self, record: dict) -> DeliveryEntry:
        """Restore one journaled outbox record into the delivery log and
        the sequence/id counters; returns the entry for the ledger."""
        entry = DeliveryEntry(
            record["n"],
            record["nid"],
            record["cid"],
            record.get("eid", ""),
            record.get("subject", ""),
            record.get("body", ""),
        )
        sub_id = record["sid"]
        self._log_entry(sub_id, entry)
        self._next_seq[sub_id] = max(self._next_seq.get(sub_id, 1), entry.sequence + 1)
        nid = entry.notification_id
        if nid.startswith("n") and nid[1:].isdigit():
            self._next_notification = max(self._next_notification, int(nid[1:]) + 1)
        return entry

    def settle_journal_entry(self, sub_id: str, sequence: int, *, delivered: bool) -> None:
        """Apply one journaled ack: the send reached its terminal state
        before the crash."""
        for entry in reversed(self._delivery_log.get(sub_id, ())):
            if entry.sequence == sequence:
                entry.status = "acked" if delivered else "dead"
                break
        if delivered:
            self._frontier[sub_id] = max(self._frontier.get(sub_id, 0), sequence)

    def begin_replay(self, ledger: dict[str, list[DeliveryEntry]], stats) -> None:
        """Enter reconciliation mode: regenerated matches consume
        *ledger* (per-subscription journaled outbox entries, in append
        order) instead of drawing fresh sequences."""
        self._replay_ledger = ledger
        self._replay_stats = stats

    def finish_replay(self, registry) -> None:
        """Leave reconciliation mode; any journaled-but-unacked entry
        replay did not regenerate (snapshot-compacted publishes) is
        re-sent directly from its stored message — at-least-once."""
        leftovers = list(self._restored_pending)
        if self._replay_ledger is not None:
            for sub_id, queue in self._replay_ledger.items():
                for entry in queue:
                    if entry.status == "pending":
                        leftovers.append((sub_id, entry))
        self._replay_ledger = None
        for sub_id, entry in leftovers:
            self._redeliver(sub_id, entry, registry)
        self._restored_pending = []
        self._replay_stats = None

    # -- durable state -------------------------------------------------------------

    def durable_state(self) -> dict:
        """Snapshot-side state: counters, per-subscription sequences,
        delivered frontiers, and the retained delivery log."""
        subs = {}
        for sub_id in set(self._next_seq) | set(self._delivery_log) | set(self._frontier):
            subs[sub_id] = {
                "next_seq": self._next_seq.get(sub_id, 1),
                "frontier": self._frontier.get(sub_id, 0),
                "entries": [
                    [e.sequence, e.notification_id, e.client_id, e.event_id, e.subject, e.body, e.status]
                    for e in self._delivery_log.get(sub_id, ())
                ],
            }
        return {"next_notification": self._next_notification, "subs": subs}

    def restore(self, state: dict) -> None:
        """Rebuild counters and the delivery log from
        :meth:`durable_state` output; pending entries are queued for
        re-send when recovery finishes."""
        self._next_notification = int(state.get("next_notification", 1))
        for sub_id, data in state.get("subs", {}).items():
            self._next_seq[sub_id] = int(data.get("next_seq", 1))
            self._frontier[sub_id] = int(data.get("frontier", 0))
            for seq, nid, cid, eid, subject, body, status in data.get("entries", ()):
                entry = DeliveryEntry(seq, nid, cid, eid, subject, body, status)
                self._log_entry(sub_id, entry)
                if status == "pending":
                    self._restored_pending.append((sub_id, entry))

    # -- reporting ----------------------------------------------------------------

    def delivered_to(self, client_id: str) -> list[DeliveryOutcome]:
        """Delivery outcomes for one subscriber, in order."""
        return [
            outcome
            for outcome in self.outcomes
            if outcome.notification.client is not None
            and outcome.notification.client.client_id == client_id
            and outcome.delivered
        ]

    def delivery_frontiers(self) -> dict[str, int]:
        """Highest acked delivery sequence per subscription — the
        quantity crash recovery must preserve exactly."""
        return dict(self._frontier)

    def delivery_log(self, sub_id: str) -> list[DeliveryEntry]:
        """The retained (bounded) delivery log for one subscription."""
        return list(self._delivery_log.get(sub_id, ()))

    def snapshot(self) -> dict[str, object]:
        data = self.stats.snapshot()
        data["dead_letters"] = len(self.dead_letters)
        data["transports"] = self.transports.stats()
        return data

    def reset(self) -> None:
        self.outcomes.clear()
        self.dead_letters.clear()
        self.stats = _EngineStats()
        self.transports.reset()

"""Exception hierarchy for the S-ToPSS reproduction.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one type at the boundary.  Subsystems raise the
more specific subclasses below; the class names mirror the package layout
(``model``, ``ontology``, ``matching``, ``core``, ``broker``, ``webapp``,
``workload``).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "InvalidAttributeError",
    "InvalidValueError",
    "IncomparableValuesError",
    "PredicateError",
    "DuplicateAttributeError",
    "ParseError",
    "SchemaError",
    "UnknownSchemaError",
    "OntologyError",
    "UnknownConceptError",
    "DuplicateConceptError",
    "TaxonomyCycleError",
    "UnknownDomainError",
    "DamlImportError",
    "MappingRuleError",
    "SnapshotMismatchError",
    "MatchingError",
    "DuplicateSubscriptionError",
    "UnknownSubscriptionError",
    "SemanticError",
    "ConfigError",
    "PipelineLimitError",
    "BrokerError",
    "UnknownClientError",
    "DuplicateClientError",
    "TransportError",
    "DeliveryError",
    "DurabilityError",
    "SimulatedCrash",
    "WebAppError",
    "RoutingError",
    "FormValidationError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# model
# ---------------------------------------------------------------------------

class ModelError(ReproError):
    """Base class for data-model errors (events, predicates, subscriptions)."""


class InvalidAttributeError(ModelError):
    """An attribute name is empty or contains forbidden characters."""


class InvalidValueError(ModelError):
    """A value has an unsupported Python type or a malformed literal."""


class IncomparableValuesError(ModelError):
    """Two values cannot be ordered (e.g. a string against a number)."""


class PredicateError(ModelError):
    """A predicate was constructed with an operator/operand mismatch."""


class DuplicateAttributeError(ModelError):
    """An event was built with two conflicting values for one attribute."""


class ParseError(ModelError):
    """The textual subscription/event language could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int = -1):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position >= 0:
            return f"{base} (at position {self.position} in {self.text!r})"
        return base


class SchemaError(ModelError):
    """An event or subscription violates its declared schema."""


class UnknownSchemaError(SchemaError):
    """A schema name was not found in the registry."""


# ---------------------------------------------------------------------------
# ontology
# ---------------------------------------------------------------------------

class OntologyError(ReproError):
    """Base class for knowledge-substrate errors."""


class UnknownConceptError(OntologyError):
    """A term is not present in the taxonomy/thesaurus being queried."""


class DuplicateConceptError(OntologyError):
    """A concept was registered twice with conflicting definitions."""


class TaxonomyCycleError(OntologyError):
    """Adding an is-a edge would create a cycle in the concept hierarchy."""


class UnknownDomainError(OntologyError):
    """A domain name was not found in the knowledge base."""


class DamlImportError(OntologyError):
    """A DAML+OIL/RDFS document could not be translated."""


class MappingRuleError(OntologyError):
    """A mapping-function definition is malformed."""


class SnapshotMismatchError(OntologyError):
    """A shared-memory concept-table snapshot does not correspond to the
    adopting table (knowledge-base version or id-space drift)."""


# ---------------------------------------------------------------------------
# matching
# ---------------------------------------------------------------------------

class MatchingError(ReproError):
    """Base class for syntactic matching-engine errors."""


class DuplicateSubscriptionError(MatchingError):
    """A subscription id was inserted twice into one matcher."""


class UnknownSubscriptionError(MatchingError):
    """A subscription id was removed/queried but never inserted."""


# ---------------------------------------------------------------------------
# core (semantic layer)
# ---------------------------------------------------------------------------

class SemanticError(ReproError):
    """Base class for semantic-stage errors."""


class ConfigError(SemanticError):
    """A :class:`~repro.core.config.SemanticConfig` value is out of range."""


class PipelineLimitError(SemanticError):
    """The semantic pipeline exceeded its derivation or iteration cap."""


# ---------------------------------------------------------------------------
# broker
# ---------------------------------------------------------------------------

class BrokerError(ReproError):
    """Base class for dispatcher/notification errors."""


class UnknownClientError(BrokerError):
    """A client id was not found in the registry."""


class DuplicateClientError(BrokerError):
    """A client id was registered twice."""


class TransportError(BrokerError):
    """A notification transport rejected or failed a send."""


class DeliveryError(BrokerError):
    """The notification engine exhausted retries for a notification."""


class DurabilityError(BrokerError):
    """The write-ahead journal or snapshot store is unusable — e.g. a
    fresh broker was pointed at a directory that already holds durable
    state (use :func:`~repro.broker.durability.recover` instead)."""


class SimulatedCrash(DurabilityError):
    """An injected ``crash`` fault fired: the journal wrote a torn
    record and the broker must be abandoned and recovered.  Raised only
    under a :class:`~repro.broker.supervision.FaultPlan` — never in
    production operation."""


# ---------------------------------------------------------------------------
# webapp
# ---------------------------------------------------------------------------

class WebAppError(ReproError):
    """Base class for the demonstration web application."""


class RoutingError(WebAppError):
    """No route matches the requested method/path."""


class FormValidationError(WebAppError):
    """Submitted form data failed validation."""

    def __init__(self, message: str, field: str = ""):
        super().__init__(message)
        self.field = field


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------

class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""

"""Experiment F2 — Figure 2: the demonstration setup end to end.

Workload generator -> web application -> S-ToPSS -> notification engine
over four transports, measured as one system.  Reproduces the figure
behaviourally: every box in the diagram participates in the measured
path, and the transport distribution is reported.
"""

from __future__ import annotations

from repro.broker.broker import Broker
from repro.metrics import Table
from repro.ontology.domains import build_jobs_knowledge_base
from repro.webapp.app import JobFinderWebApp
from repro.workload.jobfinder import JobFinderScenario, JobFinderSpec

SPEC = JobFinderSpec(n_companies=8, n_candidates=18, seed=77)


def _run_demo() -> JobFinderWebApp:
    scenario = JobFinderScenario(build_jobs_knowledge_base(), SPEC)
    web = JobFinderWebApp(Broker(build_jobs_knowledge_base()))
    transports = ["email", "sms", "tcp", "udp"]
    for index, company in enumerate(scenario.companies):
        # rotate preferred transports across companies so all four
        # Figure 2 transports carry traffic
        kwargs = {
            "email": f"hr@{company.name.lower()}.example"
            if transports[index % 4] == "email"
            else "",
            "sms": f"+1-555-{index:04d}" if transports[index % 4] == "sms" else "",
            "tcp": f"{company.name.lower()}:9000" if transports[index % 4] == "tcp" else "",
            "udp": f"{company.name.lower()}:9001" if transports[index % 4] == "udp" else "",
        }
        cid = web.post(
            "/clients",
            {
                "name": company.name,
                "role": "subscriber",
                **{k: v for k, v in kwargs.items() if v},
            },
            json=True,
        ).json()["client_id"]
        for subscription in company.subscriptions:
            web.post(
                "/subscriptions",
                {"client_id": cid, "subscription": subscription.format()},
                json=True,
            )
    for candidate in scenario.candidates:
        pid = web.post(
            "/clients", {"name": candidate.name, "role": "publisher"}, json=True
        ).json()["client_id"]
        web.post(
            "/publications",
            {"client_id": pid, "event": candidate.resume.format()},
            json=True,
        )
    return web


def test_fig2_end_to_end_demo(benchmark, capsys):
    web = benchmark.pedantic(_run_demo, rounds=3, iterations=1)

    snapshot = web.broker.notifier.snapshot()
    stats = web.broker.stats()
    table = Table(
        "F2 / Figure 2 — end-to-end demo",
        [
            "clients",
            "subscriptions",
            "publications",
            "matches",
            "delivered",
            "dead-lettered",
        ],
    )
    table.add(
        stats["clients"], stats["subscriptions"], stats["publications"],
        stats["matches"], snapshot["delivered"], snapshot["dead_lettered"],
    )
    with capsys.disabled():
        print()
        table.print()
        transport_table = Table("per-transport deliveries", ["transport", "count"])
        for name, count in sorted(snapshot["per_transport"].items()):
            transport_table.add(name, count)
        transport_table.print()

    assert stats["matches"] > 0
    assert snapshot["delivered"] == stats["matches"]
    # the rotation makes every Figure 2 transport carry traffic
    assert len(snapshot["per_transport"]) == 4

"""Experiment C2 — incremental stage composition.

"The flexibility of this approach allows incremental extension (stage
by stage) of matching algorithms, where the inclusion of any of the
three stages improves semantic matching" (paper §3.2).  The bench
replays one fixed workload under the stage ladder and reports each
stage's match contribution; the shape assertion is strict monotonicity
of the cumulative match count.
"""

from __future__ import annotations

from benchmarks.conftest import build_engine
from repro.core.config import SemanticConfig
from repro.metrics import Table

LADDER = (
    ("syntactic", SemanticConfig.syntactic()),
    ("+synonyms", SemanticConfig.synonyms_only()),
    ("+hierarchy", SemanticConfig(enable_mappings=False)),
    ("+mappings", SemanticConfig()),
)


def _match_pairs(engine, events) -> set:
    pairs = set()
    for event in events:
        for match in engine.publish(event):
            pairs.add((event.event_id, match.subscription.sub_id))
    return pairs


def test_c2_incremental_stage_contribution(benchmark, jobs_kb, semantic_workload, capsys):
    subscriptions, events = semantic_workload
    table = Table(
        "C2 — incremental stage composition (cumulative matches)",
        ["configuration", "matches", "gained vs previous"],
    )
    observed = {}

    def sweep():
        table.rows.clear()
        observed.clear()
        previous: set = set()
        for name, config in LADDER:
            engine = build_engine(jobs_kb, subscriptions, config)
            pairs = _match_pairs(engine, events)
            table.add(name, len(pairs), len(pairs - previous))
            observed[name] = pairs
            previous = pairs

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table.print()

    # C2 shape: each stage only adds matches, and the workload is rich
    # enough that every stage adds some.
    names = [name for name, _ in LADDER]
    for earlier, later in zip(names, names[1:]):
        assert observed[earlier] <= observed[later], f"{later} lost matches"
    assert len(observed["+mappings"]) > len(observed["syntactic"])

"""Ablation A4 — event-side vs subscription-side hierarchy semantics.

A3 measured the raw expansion asymmetry on synthetic trees; this bench
compares the two *complete engines* on the job-finder workload:

* :class:`~repro.core.engine.SToPSS` — the paper's design, events
  generalize upward at publish time;
* :class:`~repro.core.subexpand.SubscriptionExpandingEngine` — the
  alternative, subscriptions expand downward (to IN-sets over
  descendants) at subscribe time.

Expected shape: the subscription-side engine wins publish latency (no
per-event hierarchy expansion) but pays at subscribe time and loses
per-match generality information — the documented trade-off.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import SemanticConfig
from repro.core.engine import SToPSS
from repro.core.subexpand import SubscriptionExpandingEngine
from repro.metrics import Table
from repro.model.subscriptions import Subscription
from repro.workload.generator import SemanticSpec, SemanticWorkloadGenerator

#: Equality-only workload: the regime where the two designs cover the
#: same semantics (ordering predicates cannot be expanded downward).
_SPEC = SemanticSpec.jobs(
    seed=404,
    predicates_per_subscription=(1, 2),
    synonym_spelling_prob=0.4,
    value_synonym_prob=0.0,
)

ENGINES = {
    "event-side (paper)": lambda kb: SToPSS(kb, config=SemanticConfig()),
    "subscription-side": lambda kb: SubscriptionExpandingEngine(kb),
}


def _fresh_workload(kb):
    generator = SemanticWorkloadGenerator(kb, _SPEC)
    subs = generator.subscriptions(200)
    events = generator.events(60)
    return subs, events


@pytest.mark.parametrize("name", list(ENGINES))
def test_a4_publish_throughput(benchmark, jobs_kb, name):
    subs, events = _fresh_workload(jobs_kb)
    engine = ENGINES[name](jobs_kb)
    for sub in subs:
        engine.subscribe(Subscription(sub.predicates, sub_id=sub.sub_id))

    def run():
        return sum(len(engine.publish(event)) for event in events)

    assert benchmark(run) > 0


def test_a4_design_comparison_table(benchmark, jobs_kb, capsys):
    table = Table(
        "A4 — engine designs on the job-finder workload",
        ["design", "subscribe ms", "publish ms", "matches"],
    )
    recorded = {}

    def sweep():
        table.rows.clear()
        recorded.clear()
        for name, factory in ENGINES.items():
            subs, events = _fresh_workload(jobs_kb)
            engine = factory(jobs_kb)
            started = time.perf_counter()
            for sub in subs:
                engine.subscribe(Subscription(sub.predicates, sub_id=sub.sub_id))
            subscribe_ms = 1000 * (time.perf_counter() - started)
            started = time.perf_counter()
            matched = set()
            for event in events:
                for match in engine.publish(event):
                    matched.add((event.event_id, match.subscription.sub_id))
            publish_ms = 1000 * (time.perf_counter() - started)
            recorded[name] = (subscribe_ms, publish_ms, matched)
            table.add(name, subscribe_ms, publish_ms, len(matched))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table.print()

    event_side = recorded["event-side (paper)"]
    sub_side = recorded["subscription-side"]
    # Same workload, same matches (equality-only regime)...
    assert event_side[2] == sub_side[2]
    # ...but the publish-time cost sits on opposite sides.
    assert sub_side[1] < event_side[1]

"""Durability benchmark: journal overhead and recovery cost (PR 9).

Runs the full-semantic jobfinder publish stream through the broker
facade four ways — in-memory, write-ahead journaled, journaled with
``fsync`` per append, and journaled with aggressive snapshot
compaction — and then times :func:`~repro.broker.durability.recover`
against the journal-only and snapshot-compacted directories it left
behind.  Recorded per leg:

* ``events_per_second`` and the derived ``journal_overhead_pct`` vs the
  in-memory leg (record-only, machine-dependent — the overhead ratio is
  the number ``docs/PERFORMANCE.md`` quotes, not a gate);
* the journal counters: appends, bytes, bytes/event, compactions;
* for the recovery legs: ``recover_seconds``, records replayed,
  deliveries dedup'd.

Results land in ``BENCH_durability.json``
(``STOPSS_BENCH_DURABILITY_OUTPUT`` redirects a fresh run).  Wall-clock
numbers never gate; the deterministic assertions ARE the acceptance
signal: every durable leg reproduces the in-memory leg's exact
per-event ``(sub_id, generality)`` match lists and delivered-sequence
frontiers, and both recoveries rebuild those frontiers exactly with
every already-acked delivery dedup'd rather than re-sent.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

from repro.broker.broker import Broker
from repro.broker.durability import Durability, recover
from repro.metrics import Table
from repro.model.subscriptions import Subscription
from repro.workload.generator import SemanticSpec, SemanticWorkloadGenerator

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SUBSCRIPTIONS = 300
EVENTS = 60
#: the fsync leg pays a real fsync(2) per journal append, so it runs a
#: shorter stream — the per-event cost is what the table reports
FSYNC_EVENTS = 15
MATCHER = "counting"


def _fresh_subscription(subscription: Subscription) -> Subscription:
    return Subscription(
        subscription.predicates,
        sub_id=subscription.sub_id,
        max_generality=subscription.max_generality,
    )


def _run_leg(jobs_kb, subscriptions, events, durability=None):
    """One publish stream through the broker facade; returns the
    per-event match lists, the publish wall-clock, and the final
    delivered frontiers."""
    broker = Broker(jobs_kb, matcher=MATCHER, durability=durability)
    try:
        broker.register_subscriber("Fleet", tcp="fleet:1", client_id="cl-sub")
        broker.register_publisher("Feed", client_id="cl-pub")
        for subscription in subscriptions:
            broker.subscribe("cl-sub", _fresh_subscription(subscription))
        match_sets: list[list[tuple[str, int]]] = []
        started = time.perf_counter()
        for event in events:
            report = broker.publish("cl-pub", event)
            match_sets.append(
                [(m.subscription.sub_id, m.generality) for m in report.matches]
            )
        elapsed = time.perf_counter() - started
        frontiers = broker.notifier.delivery_frontiers()
    finally:
        broker.close()
    return match_sets, elapsed, frontiers


def _time_recover(jobs_kb, directory):
    started = time.perf_counter()
    broker = recover(directory, jobs_kb, matcher=MATCHER)
    elapsed = time.perf_counter() - started
    try:
        report = broker.recovery
        frontiers = broker.notifier.delivery_frontiers()
    finally:
        broker.close()
    return elapsed, report, frontiers


def test_durability_overhead_and_recovery(benchmark, jobs_kb, capsys):
    """In-memory vs journaled publish stream plus timed recovery:
    identical match lists and frontiers everywhere, measured journal
    overhead and replay cost."""
    generator = SemanticWorkloadGenerator(jobs_kb, SemanticSpec.jobs(seed=1709))
    subscriptions = generator.subscriptions(SUBSCRIPTIONS)
    events = generator.events(EVENTS)

    table = Table(
        f"Durability — full-semantic publish ({EVENTS} events, "
        f"{SUBSCRIPTIONS} subscriptions, single broker)",
        [
            "leg",
            "appends",
            "kb-journal",
            "bytes/ev",
            "compactions",
            "ev/s",
            "overhead%",
        ],
    )
    recovery_table = Table(
        "Recovery — rebuild the broker from durable state",
        ["source", "replayed", "dedup", "resent", "snapshot", "ms"],
    )
    payload: dict[str, object] = {
        "workload": "jobfinder",
        "configuration": "full",
        "matcher": MATCHER,
        "subscriptions": SUBSCRIPTIONS,
        "events": EVENTS,
        "fsync_events": FSYNC_EVENTS,
        "cpu_count": os.cpu_count(),
        "durability_model": (
            "every durable leg must reproduce the in-memory leg's exact "
            "per-event (sub_id, generality) match lists and delivered "
            "frontiers; recovery must rebuild the frontiers exactly with "
            "acked deliveries dedup'd; events_per_second and "
            "journal_overhead_pct are record-only"
        ),
        "legs": [],
        "recoveries": [],
    }

    def sweep():
        table.rows.clear()
        recovery_table.rows.clear()
        payload["legs"] = []
        payload["recoveries"] = []
        with tempfile.TemporaryDirectory() as scratch:
            root = pathlib.Path(scratch)
            baseline, memory_elapsed, memory_frontiers = _run_leg(
                jobs_kb, subscriptions, events
            )
            legs = [("in-memory", None, baseline, memory_elapsed, memory_frontiers)]

            journaled = Durability(root / "journal", snapshot_every=0)
            match_sets, elapsed, frontiers = _run_leg(
                jobs_kb, subscriptions, events, durability=journaled
            )
            assert match_sets == baseline, "journaling changed the match lists"
            assert frontiers == memory_frontiers, "journaling moved the frontiers"
            legs.append(("journaled", journaled, match_sets, elapsed, frontiers))

            fsynced = Durability(root / "fsync", snapshot_every=0, fsync=True)
            fsync_sets, fsync_elapsed, _ = _run_leg(
                jobs_kb, subscriptions, events[:FSYNC_EVENTS], durability=fsynced
            )
            assert fsync_sets == baseline[:FSYNC_EVENTS]
            legs.append(("journaled+fsync", fsynced, fsync_sets, fsync_elapsed, None))

            compacted = Durability(root / "compacted", snapshot_every=100)
            compact_sets, compact_elapsed, compact_frontiers = _run_leg(
                jobs_kb, subscriptions, events, durability=compacted
            )
            assert compact_sets == baseline
            assert compact_frontiers == memory_frontiers
            assert compacted.stats.snapshot_compactions > 0, (
                "the compaction leg never compacted"
            )
            legs.append(
                ("compacting", compacted, compact_sets, compact_elapsed, compact_frontiers)
            )

            for name, durability, match_sets, elapsed, _ in legs:
                event_count = len(match_sets)
                rate = event_count / elapsed if elapsed else 0.0
                stats = durability.stats.snapshot() if durability else {}
                appends = stats.get("journal_appends", 0)
                journal_bytes = stats.get("journal_bytes", 0)
                overhead = 0.0
                if name != "in-memory" and memory_elapsed and event_count:
                    per_event = elapsed / event_count
                    overhead = 100.0 * (per_event / (memory_elapsed / EVENTS) - 1.0)
                table.add(
                    name,
                    appends,
                    round(journal_bytes / 1024, 1),
                    round(journal_bytes / event_count, 1) if event_count else 0,
                    stats.get("snapshot_compactions", 0),
                    round(rate, 1),
                    round(overhead, 1),
                )
                payload["legs"].append({
                    "leg": name,
                    "events": event_count,
                    "matches": sum(len(per_event) for per_event in match_sets),
                    "journal": stats,
                    "publish_seconds": elapsed,
                    "events_per_second": rate,
                    "journal_overhead_pct": overhead,
                })

            for name, directory in (
                ("journal-only", root / "journal"),
                ("snapshot+tail", root / "compacted"),
            ):
                recover_seconds, report, recovered_frontiers = _time_recover(
                    jobs_kb, directory
                )
                assert recovered_frontiers == memory_frontiers, (
                    "recovery lost or moved delivered frontiers",
                    name,
                )
                assert report.replayed_deliveries == 0, (
                    "a fully-acked journal re-sent deliveries",
                    name,
                )
                recovery_table.add(
                    name,
                    report.records_replayed,
                    report.dedup_drops,
                    report.replayed_deliveries,
                    "yes" if report.snapshot_loaded else "no",
                    round(1000.0 * recover_seconds, 1),
                )
                payload["recoveries"].append({
                    "source": name,
                    "records_replayed": report.records_replayed,
                    "dedup_drops": report.dedup_drops,
                    "replayed_deliveries": report.replayed_deliveries,
                    "snapshot_loaded": report.snapshot_loaded,
                    "recover_seconds": recover_seconds,
                })
            # the journal-only recovery regenerates every delivery and
            # must dedup all of them; the compacted one folded most of
            # its history into the snapshot instead
            assert payload["recoveries"][0]["dedup_drops"] > 0

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    out_path = pathlib.Path(
        os.environ.get(
            "STOPSS_BENCH_DURABILITY_OUTPUT", _REPO_ROOT / "BENCH_durability.json"
        )
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        print()
        table.print()
        print()
        recovery_table.print()
        print(f"wrote {out_path}")

"""Experiment C5 — the demonstration's semantic vs. syntactic modes.

"In order to better understand the advantages of a semantic-aware
system, the application can run in two different modes: semantic or
syntactic" (paper §4).  The identical job-finder scenario runs through
a full broker (dispatcher + notification engine) in both modes.
Expected shape: the semantic mode dominates, most of its matches being
semantic-only.
"""

from __future__ import annotations

import pytest

from repro.broker.broker import Broker
from repro.core.config import SemanticConfig
from repro.metrics import Table
from repro.ontology.domains import build_jobs_knowledge_base
from repro.workload.jobfinder import JobFinderScenario, JobFinderSpec

SPEC = JobFinderSpec(n_companies=10, n_candidates=30, seed=2003)

MODES = {
    "semantic": SemanticConfig.semantic,
    "syntactic": SemanticConfig.syntactic,
}


@pytest.mark.parametrize("mode", list(MODES))
def test_c5_scenario_throughput_by_mode(benchmark, mode):
    def run():
        scenario = JobFinderScenario(build_jobs_knowledge_base(), SPEC)
        broker = Broker(build_jobs_knowledge_base(), config=MODES[mode]())
        return scenario.run(broker)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.publications == SPEC.n_candidates


def test_c5_mode_comparison_table(benchmark, capsys):
    reports = {}

    def sweep():
        reports.clear()
        for mode, config_factory in MODES.items():
            scenario = JobFinderScenario(build_jobs_knowledge_base(), SPEC)
            broker = Broker(build_jobs_knowledge_base(), config=config_factory())
            reports[mode] = scenario.run(broker)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        "C5 — demo modes on the identical scenario",
        ["mode", "subscriptions", "resumes", "matches", "semantic-only", "delivered"],
    )
    for mode, report in reports.items():
        table.add(
            mode,
            report.subscriptions,
            report.publications,
            report.matches,
            report.semantic_matches,
            report.deliveries,
        )
    with capsys.disabled():
        print()
        table.print()

    semantic, syntactic = reports["semantic"], reports["syntactic"]
    assert semantic.matches > syntactic.matches
    assert semantic.semantic_matches > 0
    assert semantic.deliveries == semantic.matches

"""Ablation A2 — cost of the hierarchy↔mapping fixpoint loop.

"The concept hierarchy stage can create new events for which additional
mapping functions exist and vice versa" (paper §3.2).  Synthetic rule
chains of increasing depth force exactly d alternations; the bench
measures how expansion cost grows with chain depth and checks the
iteration counter tracks it.
"""

from __future__ import annotations

import pytest

from repro.core.config import SemanticConfig
from repro.core.pipeline import SemanticPipeline
from repro.metrics import Table
from repro.model.events import Event
from repro.ontology.knowledge_base import KnowledgeBase
from repro.ontology.mappingdefs import MappingRule

DEPTHS = (1, 2, 4, 6)


def _chained_kb(depth: int) -> KnowledgeBase:
    """Rules r_i: when (a{i} = t{i}) then (a{i+1} = s{i+1}); the taxonomy
    generalizes s{i} -> t{i}, so each fixpoint round enables the next
    rule: mapping -> hierarchy -> mapping -> …"""
    kb = KnowledgeBase()
    taxonomy = kb.add_domain("chain")
    for index in range(depth + 1):
        taxonomy.add_isa(f"s{index}", f"t{index}")
    for index in range(depth):
        kb.add_rule(
            MappingRule.equivalence(
                f"r{index}",
                {f"a{index}": f"t{index}"},
                {f"a{index + 1}": f"s{index + 1}"},
                domain="chain",
            )
        )
    return kb


@pytest.mark.parametrize("depth", DEPTHS, ids=lambda d: f"depth{d}")
def test_a2_fixpoint_chain_cost(benchmark, depth):
    kb = _chained_kb(depth)
    pipeline = SemanticPipeline(kb, SemanticConfig(max_iterations=2 * depth + 2))
    event = Event({"a0": "s0"})

    result = benchmark(pipeline.process_event, event)
    # the chain is fully traversed: the last attribute was derived
    assert any(f"a{depth}" in d.event for d in result.derived)


def test_a2_chain_depth_table(benchmark, capsys):
    table = Table(
        "A2 — fixpoint chain sweep",
        ["chain depth", "derived events", "iterations"],
    )
    iterations = {}

    def sweep():
        table.rows.clear()
        iterations.clear()
        for depth in DEPTHS:
            pipeline = SemanticPipeline(
                _chained_kb(depth), SemanticConfig(max_iterations=2 * depth + 2)
            )
            result = pipeline.process_event(Event({"a0": "s0"}))
            iterations[depth] = result.iterations
            table.add(depth, len(result.derived), result.iterations)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table.print()

    # shape: iterations grow with chain depth (each round unlocks the
    # next mapping), and never exceed the configured cap.
    values = [iterations[d] for d in DEPTHS]
    assert values == sorted(values)
    assert values[-1] > values[0]


def test_a2_iteration_cap_bounds_work(benchmark):
    """The safety cap truncates a deep chain without livelock."""
    kb = _chained_kb(8)
    pipeline = SemanticPipeline(kb, SemanticConfig(max_iterations=2))
    result = benchmark(pipeline.process_event, Event({"a0": "s0"}))
    assert result.iterations <= 2
    assert all("a8" not in d.event for d in result.derived)

"""Fault-recovery benchmark for the supervised process data plane (PR 8).

Runs the full-semantic jobfinder publish stream against a 2-shard
worker-process fleet, once clean and once per chaos seed under a seeded
:class:`~repro.broker.supervision.FaultPlan` that kills, hangs, drops,
corrupts, and snapshot-poisons workers mid-stream, and records per leg:

* ``events_per_second`` — observed wall-clock throughput (record-only,
  machine-dependent; the chaos legs pay fork-and-rebuild respawns so
  their number is *expected* to trail the clean leg — the gap is the
  measured price of recovery, not a regression).
* the supervision counters (``worker_restarts``, ``publish_retries``,
  ``degraded_publishes``, ``breaker_opens``, ``snapshot_fallbacks``,
  ``stale_replies_discarded``) and the derived operator-facing rates:
  ``restarts_per_1k_events``, ``degraded_publish_rate``, and
  ``mean_restart_seconds`` (fork + re-subscribe + snapshot re-adopt,
  the data plane's measured MTTR).

Results land in ``BENCH_faults.json`` (``STOPSS_BENCH_FAULTS_OUTPUT``
redirects a fresh run).  Wall-clock numbers never gate; the in-test
assertions are deterministic and ARE the acceptance signal: every chaos
leg reproduces the clean leg's exact per-event ``(sub_id, generality)``
match lists (no publish lost, duplicated, or reordered by a fault), no
publish raises, every scheduled fault fires, the recovery counters are
non-zero under chaos and all-zero on the clean leg.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.broker.sharding import ShardedEngine
from repro.broker.supervision import FaultPlan, SupervisionPolicy
from repro.core.config import SemanticConfig
from repro.metrics import Table
from repro.model.subscriptions import Subscription
from repro.workload.generator import SemanticSpec, SemanticWorkloadGenerator

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SHARDS = 2
SUBSCRIPTIONS = 300
EVENTS = 60
MATCHER = "counting"
#: chaos legs; each seed derives a distinct reproducible fault schedule
CHAOS_SEEDS = (11, 29, 47)
#: faults scheduled inside the publish window of each chaos leg — dense
#: enough that every run exercises respawn, retry, and epoch discard
FAULTS_PER_LEG = 8
#: zero backoff/cooldown keeps the timed window dominated by the real
#: recovery work (fork + rebuild), not by sleeps
POLICY = SupervisionPolicy(backoff_base=0.0, breaker_cooldown=0.0)


def _fresh_subscription(subscription: Subscription) -> Subscription:
    return Subscription(
        subscription.predicates,
        sub_id=subscription.sub_id,
        max_generality=subscription.max_generality,
    )


def _run_leg(jobs_kb, subscriptions, events, fault_plan):
    engine = ShardedEngine(
        jobs_kb,
        shards=SHARDS,
        matcher=MATCHER,
        config=SemanticConfig(),
        executor="process",
        supervision=POLICY,
        fault_plan=fault_plan,
    )
    try:
        for subscription in subscriptions:
            engine.subscribe(_fresh_subscription(subscription))
        # fork the fleet outside the timed window (a long-running broker
        # pays it once) so the chaos legs time *recovery*, not startup
        engine._ensure_plane()
        match_sets: list[list[tuple[str, int]]] = []
        started = time.perf_counter()
        for event in events:
            match_sets.append(
                [(m.subscription.sub_id, m.generality) for m in engine.publish(event)]
            )
        elapsed = time.perf_counter() - started
        supervision = engine.supervision.snapshot()
    finally:
        engine.close()
    return match_sets, elapsed, supervision


def test_fault_recovery(benchmark, jobs_kb, capsys):
    """Clean-vs-chaos publish stream: identical match lists, measured
    recovery counters and rates per chaos seed."""
    generator = SemanticWorkloadGenerator(jobs_kb, SemanticSpec.jobs(seed=1707))
    subscriptions = generator.subscriptions(SUBSCRIPTIONS)
    events = generator.events(EVENTS)

    table = Table(
        f"Fault recovery — full-semantic publish ({EVENTS} events, "
        f"{SHARDS}-shard process fleet, {FAULTS_PER_LEG} faults/leg)",
        [
            "leg",
            "faults",
            "restarts",
            "retries",
            "degraded",
            "snap-fb",
            "stale-drop",
            "ev/s",
            "rst/1k-ev",
            "degr-rate%",
            "mttr-ms",
        ],
    )
    payload: dict[str, object] = {
        "workload": "jobfinder",
        "configuration": "full",
        "matcher": MATCHER,
        "shards": SHARDS,
        "subscriptions": SUBSCRIPTIONS,
        "events": EVENTS,
        "faults_per_leg": FAULTS_PER_LEG,
        "cpu_count": os.cpu_count(),
        "recovery_model": (
            "every chaos leg must reproduce the clean leg's exact per-event "
            "(sub_id, generality) match lists with no publish raising; "
            "mean_restart_seconds is fork + re-subscribe + snapshot re-adopt "
            "per respawn (measured MTTR); wall-clock rates are record-only"
        ),
        "legs": [],
    }

    def sweep():
        table.rows.clear()
        payload["legs"] = []
        baseline, clean_elapsed, clean_counters = _run_leg(
            jobs_kb, subscriptions, events, fault_plan=None
        )
        assert all(value == 0 for value in clean_counters.values()), (
            "clean leg recorded recovery interventions",
            clean_counters,
        )
        legs = [("clean", None, baseline, clean_elapsed, clean_counters)]
        for seed in CHAOS_SEEDS:
            plan = FaultPlan.seeded(
                seed, shards=SHARDS, ops=EVENTS, faults=FAULTS_PER_LEG
            )
            match_sets, elapsed, counters = _run_leg(
                jobs_kb, subscriptions, events, fault_plan=plan
            )
            assert match_sets == baseline, (
                "chaos leg diverged from the clean leg's match lists",
                seed,
            )
            assert plan.pending == 0, ("a scheduled fault never fired", seed)
            recoveries = (
                counters["worker_restarts"]
                + counters["publish_retries"]
                + counters["degraded_publishes"]
                + counters["breaker_opens"]
            )
            assert recoveries > 0, ("faults fired but nothing was recovered", seed)
            legs.append((f"chaos-{seed}", plan, match_sets, elapsed, counters))
        for name, plan, match_sets, elapsed, counters in legs:
            rate = EVENTS / elapsed if elapsed else 0.0
            restarts = counters["worker_restarts"]
            mttr = counters["restart_seconds"] / restarts if restarts else 0.0
            degraded_rate = counters["degraded_publishes"] / EVENTS
            table.add(
                name,
                plan.planned if plan is not None else 0,
                restarts,
                counters["publish_retries"],
                counters["degraded_publishes"],
                counters["snapshot_fallbacks"],
                counters["stale_replies_discarded"],
                round(rate, 1),
                round(1000.0 * restarts / EVENTS, 1),
                round(100.0 * degraded_rate, 1),
                round(1000.0 * mttr, 1),
            )
            payload["legs"].append({
                "leg": name,
                "faults_planned": plan.planned if plan is not None else 0,
                "faults_fired": dict(plan.fired) if plan is not None else {},
                "matches": sum(len(per_event) for per_event in match_sets),
                "supervision": counters,
                "publish_seconds": elapsed,
                "events_per_second": rate,
                "restarts_per_1k_events": 1000.0 * restarts / EVENTS,
                "degraded_publish_rate": degraded_rate,
                "mean_restart_seconds": mttr,
            })

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    out_path = pathlib.Path(
        os.environ.get("STOPSS_BENCH_FAULTS_OUTPUT", _REPO_ROOT / "BENCH_faults.json")
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        print()
        table.print()
        print(f"wrote {out_path}")

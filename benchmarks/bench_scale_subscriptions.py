"""Subscription-scaling sweep for demand-driven expansion (PR 4).

The interest index makes expansion cost a function of *what the live
subscriptions can reach*, not of the knowledge base's full derivation
cross-product — so the interesting axis is the subscription-table
size.  This sweep grows the jobfinder full-semantic table 100→5000
subscriptions (each count a prefix of one seeded stream, so rows are
nested workloads) and records, per ``(subscriptions, matcher)`` row:
wall-clock events/s, the match volume, and the pruning counters
(``candidates_pruned`` / ``prune_checks`` / ``interest_index_size``).

Results land in ``BENCH_scale.json`` (``STOPSS_BENCH_SCALE_OUTPUT``
redirects a fresh run).  CI runs this as a **record-only artifact** —
wall-clock scaling is machine-dependent and the index shape moves with
any workload change, so no gate reads this file; the hard pruning gate
lives on ``BENCH_publish.json``'s deterministic counters
(``benchmarks/check_bench_regression.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from benchmarks.conftest import build_engine
from repro.core.config import SemanticConfig
from repro.metrics import Table
from repro.workload.generator import SemanticSpec, SemanticWorkloadGenerator

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: prefix sizes of one seeded subscription stream (nested workloads:
#: every count contains the previous count's subscriptions)
SUBSCRIPTION_COUNTS = (100, 400, 1000, 2000, 5000)
EVENTS = 40


def test_scale_subscriptions(benchmark, jobs_kb, capsys):
    """Full-semantic publish throughput and pruning behavior as the
    subscription table grows.

    Deterministic shape assertions (counters, not wall-clock): pruning
    stays active at every size, and the derived-event volume is
    monotone in the table size — more subscribers can only widen the
    interest closure, never narrow it (prefix workloads make the
    comparison exact).
    """
    generator = SemanticWorkloadGenerator(jobs_kb, SemanticSpec.jobs(seed=1703))
    subscriptions = generator.subscriptions(max(SUBSCRIPTION_COUNTS))
    events = generator.events(EVENTS)

    table = Table(
        f"Scale — full-semantic publish vs subscription count ({EVENTS} events)",
        [
            "subs",
            "matcher",
            "matches",
            "derived",
            "pruned",
            "prune-hit%",
            "index size",
            "events/s",
        ],
    )
    payload: dict[str, object] = {
        "workload": "jobfinder",
        "configuration": "full",
        "events": EVENTS,
        "sweep": [],
    }

    def sweep():
        table.rows.clear()
        payload["sweep"] = []
        for count in SUBSCRIPTION_COUNTS:
            for matcher_name in ("counting", "cluster"):
                engine = build_engine(
                    jobs_kb,
                    subscriptions[:count],
                    SemanticConfig(),
                    matcher=matcher_name,
                )
                matches = 0
                started = time.perf_counter()
                for event in events:
                    matches += len(engine.publish(event))
                elapsed = time.perf_counter() - started
                interest = engine.interest_info()
                derived = engine.counters.get("publish.derived_events")
                table.add(
                    count,
                    matcher_name,
                    matches,
                    derived,
                    interest["candidates_pruned"],
                    round(100 * interest["prune_hit_rate"], 1),
                    interest["interest_index_size"],
                    round(EVENTS / elapsed, 1) if elapsed else 0.0,
                )
                payload["sweep"].append({
                    "subscriptions": count,
                    "matcher": matcher_name,
                    "matches": matches,
                    "derived_events": derived,
                    "candidates_pruned": interest["candidates_pruned"],
                    "prune_checks": interest["prune_checks"],
                    "prune_hit_rate": interest["prune_hit_rate"],
                    "interest_index_size": interest["interest_index_size"],
                    # wall-clock: record-only, machine-dependent
                    "publish_seconds": elapsed,
                    "events_per_second": EVENTS / elapsed if elapsed else 0.0,
                })

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    out_path = pathlib.Path(
        os.environ.get("STOPSS_BENCH_SCALE_OUTPUT", _REPO_ROOT / "BENCH_scale.json")
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        print()
        table.print()
        print(f"wrote {out_path}")

    rows = payload["sweep"]
    per_matcher: dict[str, list[dict]] = {}
    for row in rows:
        assert row["candidates_pruned"] > 0, row
        assert row["matches"] > 0, row
        per_matcher.setdefault(row["matcher"], []).append(row)
    for matcher_rows in per_matcher.values():
        derived_counts = [row["derived_events"] for row in matcher_rows]
        assert derived_counts == sorted(derived_counts), (
            "interest closure narrowed as subscriptions grew", derived_counts
        )
        sizes = [row["interest_index_size"] for row in matcher_rows]
        assert sizes == sorted(sizes), ("interest index shrank", sizes)

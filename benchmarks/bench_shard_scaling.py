"""Shard-scaling sweep for the sharded broker (PR 5, executors PR 7).

Grows the full-semantic jobfinder subscription table 100→5000 across an
executor × shard-count grid — the threaded fan-out at 2/4/8 shards and
the worker-process data plane at 2/4 — against a 1-shard baseline row,
and records per ``(subscriptions, executor, shards)`` row:

* ``events_per_second`` — **observed** wall-clock throughput.  Threaded
  shard publish work is pure Python, so on a stock (GIL) interpreter
  the threads interleave instead of overlapping and that executor's
  observed number cannot beat one shard; the process executor runs each
  shard on its own interpreter, so with ≥ shards cores its observed
  number is the one expected to clear 1.0× (on a single-core runner it
  honestly will not — IPC overhead with no overlap to pay for it).
* ``events_per_second_critical_path`` — throughput over the fan-out's
  **measured critical path**: per publication, the slowest shard's
  publish CPU (thread time, so GIL interleaving does not inflate it).
  This is what wall-clock converges to once shards genuinely overlap.
* ``speedup_vs_one_shard`` / ``observed_speedup_vs_one_shard`` —
  critical-path and wall-clock throughput relative to the 1-shard row
  of the same table size.
* the merged match/derived/pruning counters, per-shard busy CPU, and
  (process rows) the one-time worker-fleet startup cost, kept out of
  the timed publish window the way a long-running broker amortizes it.

The top-level ``observed_speedup`` summary distills the scale-out
acceptance signal: the best wall-clock speedup among 4-shard process
rows.  ``benchmarks/check_shard_speedup.py`` gates on it in CI's
multicore job (> 1.0 required when the runner has ≥ 4 cores; smaller
runners record without gating).

Results land in ``BENCH_shards.json`` (``STOPSS_BENCH_SHARDS_OUTPUT``
redirects a fresh run).  Wall-clock numbers are machine-dependent and
never gate by themselves; the in-test assertions are deterministic:
every executor leg — including the full wire-codec/shared-memory
process path — reproduces the 1-shard row's exact per-event
``(sub_id, generality)`` match lists, and every subscription lands on
exactly one shard.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.broker.sharding import ShardedEngine
from repro.core.config import SemanticConfig
from repro.metrics import Table
from repro.model.subscriptions import Subscription
from repro.workload.generator import SemanticSpec, SemanticWorkloadGenerator

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: (executor spec, shard count) legs; the 1-shard serial row is the
#: speedup baseline for every other leg at the same table size.
EXECUTOR_LEGS = (
    ("serial", 1),
    ("threads", 2),
    ("threads", 4),
    ("threads", 8),
    ("process", 2),
    ("process", 4),
)
SUBSCRIPTION_COUNTS = (100, 1000, 5000)
EVENTS = 40
MATCHER = "counting"


def _fresh_subscription(subscription: Subscription) -> Subscription:
    return Subscription(
        subscription.predicates,
        sub_id=subscription.sub_id,
        max_generality=subscription.max_generality,
    )


def test_shard_scaling(benchmark, jobs_kb, capsys):
    """Full-semantic publish throughput across the executor × shard
    grid, at three subscription-table sizes."""
    generator = SemanticWorkloadGenerator(jobs_kb, SemanticSpec.jobs(seed=1703))
    subscriptions = generator.subscriptions(max(SUBSCRIPTION_COUNTS))
    events = generator.events(EVENTS)

    table = Table(
        f"Shard scaling — full-semantic publish ({EVENTS} events, "
        f"{MATCHER} matcher, executor sweep)",
        [
            "subs",
            "exec",
            "shards",
            "matches",
            "derived",
            "pruned",
            "ev/s",
            "ev/s crit-path",
            "speedup",
            "observed",
        ],
    )
    payload: dict[str, object] = {
        "workload": "jobfinder",
        "configuration": "full",
        "matcher": MATCHER,
        "events": EVENTS,
        "cpu_count": os.cpu_count(),
        "speedup_model": (
            "speedup_vs_one_shard compares events_per_second_critical_path "
            "(per-publication max of per-shard publish CPU, thread time) "
            "against the 1-shard row; observed_speedup_vs_one_shard is the "
            "wall-clock ratio — GIL-bound for threads, real multicore for "
            "the process executor given >= shards cores"
        ),
        "sweep": [],
    }

    def sweep():
        table.rows.clear()
        payload["sweep"] = []
        best_process_speedup: dict[int, float] = {}
        for count in SUBSCRIPTION_COUNTS:
            base_match_sets: list | None = None
            base_critical_rate: float | None = None
            base_observed_rate: float | None = None
            for executor, shards in EXECUTOR_LEGS:
                engine = ShardedEngine(
                    jobs_kb,
                    shards=shards,
                    matcher=MATCHER,
                    config=SemanticConfig(),
                    executor=executor,
                )
                try:
                    for subscription in subscriptions[:count]:
                        engine.subscribe(_fresh_subscription(subscription))
                    # fork the worker fleet outside the timed window: a
                    # long-running broker pays it once, not per publish
                    startup = 0.0
                    if executor == "process":
                        started = time.perf_counter()
                        engine._ensure_plane()
                        startup = time.perf_counter() - started
                    #: per event, the exact (sub_id, generality) list —
                    #: the full observable surface the 1-shard row must
                    #: reproduce (totals alone could mask a lost match
                    #: offset by a double-report)
                    match_sets: list[list[tuple[str, int]]] = []
                    started = time.perf_counter()
                    for event in events:
                        match_sets.append(
                            [
                                (m.subscription.sub_id, m.generality)
                                for m in engine.publish(event)
                            ]
                        )
                    elapsed = time.perf_counter() - started
                    stats = engine.stats()
                    sharding = stats["sharding"]
                finally:
                    engine.close()
                matches = sum(len(per_event) for per_event in match_sets)
                critical = sharding["critical_path_seconds"]
                observed_rate = EVENTS / elapsed if elapsed else 0.0
                critical_rate = EVENTS / critical if critical else 0.0
                if shards == 1:
                    base_match_sets = match_sets
                    base_critical_rate = critical_rate
                    base_observed_rate = observed_rate
                assert match_sets == base_match_sets, (
                    "sharded match sets diverged from the single engine",
                    count,
                    executor,
                    shards,
                )
                assert sum(sharding["subscriptions_per_shard"]) == count
                speedup = critical_rate / base_critical_rate if base_critical_rate else 0.0
                observed_speedup = (
                    observed_rate / base_observed_rate if base_observed_rate else 0.0
                )
                if executor == "process" and shards == 4:
                    best_process_speedup[count] = observed_speedup
                interest = stats.get("interest", {})
                table.add(
                    count,
                    executor,
                    shards,
                    matches,
                    stats.get("derived_events", 0),
                    interest.get("candidates_pruned", 0),
                    round(observed_rate, 1),
                    round(critical_rate, 1),
                    round(speedup, 2),
                    round(observed_speedup, 2),
                )
                payload["sweep"].append({
                    "subscriptions": count,
                    "executor": executor,
                    "shards": shards,
                    "matches": matches,
                    "derived_events": stats.get("derived_events", 0),
                    "candidates_pruned": interest.get("candidates_pruned", 0),
                    "subscriptions_per_shard": sharding["subscriptions_per_shard"],
                    "busy_cpu_seconds": sharding["busy_cpu_seconds"],
                    "wire_fallbacks": sharding["wire_fallbacks"],
                    "plane_startup_seconds": startup,
                    # wall-clock: record-only, machine-dependent
                    "publish_seconds": elapsed,
                    "events_per_second": observed_rate,
                    "observed_speedup_vs_one_shard": observed_speedup,
                    "critical_path_seconds": critical,
                    "events_per_second_critical_path": critical_rate,
                    "speedup_vs_one_shard": speedup,
                })
        payload["observed_speedup"] = {
            "executor": "process",
            "shards": 4,
            "by_subscriptions": {
                str(count): round(value, 3)
                for count, value in sorted(best_process_speedup.items())
            },
            "best": round(max(best_process_speedup.values()), 3)
            if best_process_speedup
            else 0.0,
        }

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    out_path = pathlib.Path(
        os.environ.get("STOPSS_BENCH_SHARDS_OUTPUT", _REPO_ROOT / "BENCH_shards.json")
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        print()
        table.print()
        print(f"observed_speedup (process, 4 shards): {payload['observed_speedup']}")
        print(f"wrote {out_path}")

"""Shard-scaling sweep for the sharded broker (PR 5).

Grows the full-semantic jobfinder subscription table 100→5000 and the
shard count 1→8 (threaded fan-out executor), and records per
``(subscriptions, shards)`` row:

* ``events_per_second`` — **observed** wall-clock throughput.  Shard
  publish work is pure Python, so on a stock (GIL) interpreter the
  threads interleave instead of overlapping and this number cannot
  beat one shard; on free-threaded builds or multi-process deployments
  it converges toward the critical-path number below.
* ``events_per_second_critical_path`` — throughput over the fan-out's
  **measured critical path**: per publication, the slowest shard's
  publish CPU (thread time, so GIL interleaving does not inflate it).
  This is what the threaded executor's wall-clock becomes once shards
  genuinely overlap (≥ shards cores), measured — not modelled — from
  per-shard timers.
* ``speedup_vs_one_shard`` — critical-path throughput relative to the
  1-shard row of the same table size (the scale-out signal), plus
  ``observed_speedup_vs_one_shard`` for the honest single-core view.
* the merged match/derived/pruning counters, and per-shard busy CPU.

Results land in ``BENCH_shards.json`` (``STOPSS_BENCH_SHARDS_OUTPUT``
redirects a fresh run).  CI runs this as a **record-only artifact** —
wall-clock is machine-dependent, so no gate reads this file; the only
assertions below are deterministic: the per-event ``(sub_id,
generality)`` match lists stay identical to the 1-shard row at every
size, and every subscription lands on exactly one shard.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.broker.sharding import ShardedEngine
from repro.core.config import SemanticConfig
from repro.metrics import Table
from repro.model.subscriptions import Subscription
from repro.workload.generator import SemanticSpec, SemanticWorkloadGenerator

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SHARD_COUNTS = (1, 2, 4, 8)
SUBSCRIPTION_COUNTS = (100, 1000, 5000)
EVENTS = 40
MATCHER = "counting"


def _fresh_subscription(subscription: Subscription) -> Subscription:
    return Subscription(
        subscription.predicates,
        sub_id=subscription.sub_id,
        max_generality=subscription.max_generality,
    )


def test_shard_scaling(benchmark, jobs_kb, capsys):
    """Full-semantic publish throughput as shards grow, at three
    subscription-table sizes (threaded executor throughout)."""
    generator = SemanticWorkloadGenerator(jobs_kb, SemanticSpec.jobs(seed=1703))
    subscriptions = generator.subscriptions(max(SUBSCRIPTION_COUNTS))
    events = generator.events(EVENTS)

    table = Table(
        f"Shard scaling — full-semantic publish ({EVENTS} events, "
        f"{MATCHER} matcher, threads executor)",
        [
            "subs",
            "shards",
            "matches",
            "derived",
            "pruned",
            "ev/s",
            "ev/s crit-path",
            "speedup",
        ],
    )
    payload: dict[str, object] = {
        "workload": "jobfinder",
        "configuration": "full",
        "matcher": MATCHER,
        "executor": "threads",
        "events": EVENTS,
        "cpu_count": os.cpu_count(),
        "speedup_model": (
            "speedup_vs_one_shard compares events_per_second_critical_path "
            "(per-publication max of per-shard publish CPU, thread time) "
            "against the 1-shard row; observed wall-clock is recorded "
            "beside it and is GIL/core-count bound"
        ),
        "sweep": [],
    }

    def sweep():
        table.rows.clear()
        payload["sweep"] = []
        for count in SUBSCRIPTION_COUNTS:
            base_match_sets: list | None = None
            base_critical_rate: float | None = None
            base_observed_rate: float | None = None
            for shards in SHARD_COUNTS:
                engine = ShardedEngine(
                    jobs_kb,
                    shards=shards,
                    matcher=MATCHER,
                    config=SemanticConfig(),
                    executor="threads",
                )
                try:
                    for subscription in subscriptions[:count]:
                        engine.subscribe(_fresh_subscription(subscription))
                    #: per event, the exact (sub_id, generality) list —
                    #: the full observable surface the 1-shard row must
                    #: reproduce (totals alone could mask a lost match
                    #: offset by a double-report)
                    match_sets: list[list[tuple[str, int]]] = []
                    started = time.perf_counter()
                    for event in events:
                        match_sets.append(
                            [
                                (m.subscription.sub_id, m.generality)
                                for m in engine.publish(event)
                            ]
                        )
                    elapsed = time.perf_counter() - started
                    stats = engine.stats()
                    sharding = stats["sharding"]
                finally:
                    engine.close()
                matches = sum(len(per_event) for per_event in match_sets)
                critical = sharding["critical_path_seconds"]
                observed_rate = EVENTS / elapsed if elapsed else 0.0
                critical_rate = EVENTS / critical if critical else 0.0
                if shards == 1:
                    base_match_sets = match_sets
                    base_critical_rate = critical_rate
                    base_observed_rate = observed_rate
                assert match_sets == base_match_sets, (
                    "sharded match sets diverged from the single engine",
                    count,
                    shards,
                )
                assert sum(sharding["subscriptions_per_shard"]) == count
                speedup = critical_rate / base_critical_rate if base_critical_rate else 0.0
                observed_speedup = (
                    observed_rate / base_observed_rate if base_observed_rate else 0.0
                )
                interest = stats.get("interest", {})
                table.add(
                    count,
                    shards,
                    matches,
                    stats.get("derived_events", 0),
                    interest.get("candidates_pruned", 0),
                    round(observed_rate, 1),
                    round(critical_rate, 1),
                    round(speedup, 2),
                )
                payload["sweep"].append({
                    "subscriptions": count,
                    "shards": shards,
                    "matches": matches,
                    "derived_events": stats.get("derived_events", 0),
                    "candidates_pruned": interest.get("candidates_pruned", 0),
                    "subscriptions_per_shard": sharding["subscriptions_per_shard"],
                    "busy_cpu_seconds": sharding["busy_cpu_seconds"],
                    # wall-clock: record-only, machine-dependent
                    "publish_seconds": elapsed,
                    "events_per_second": observed_rate,
                    "observed_speedup_vs_one_shard": observed_speedup,
                    "critical_path_seconds": critical,
                    "events_per_second_critical_path": critical_rate,
                    "speedup_vs_one_shard": speedup,
                })

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    out_path = pathlib.Path(
        os.environ.get("STOPSS_BENCH_SHARDS_OUTPUT", _REPO_ROOT / "BENCH_shards.json")
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        print()
        table.print()
        print(f"wrote {out_path}")

"""CI multicore gate for the process-executor shard scaling sweep.

Reads a ``BENCH_shards.json`` payload (written by
``bench_shard_scaling.py``) and enforces the PR 7 acceptance bar: on a
runner with at least 4 CPU cores, the best **observed wall-clock**
speedup among 4-shard process-executor rows must exceed 1.0× the
1-shard baseline — the worker processes genuinely overlapped, GIL and
IPC overhead included.

The gate is deliberately conditional on the *recorded* core count
(``cpu_count`` in the payload, captured where the sweep actually ran):
on smaller machines a process fleet has no cores to overlap on, so the
honest sub-1.0 number is recorded and reported but never fails the
job.  Everything deterministic about the sweep (match-set equality
across every executor leg) already gated inside the benchmark itself.

Usage::

    python benchmarks/check_shard_speedup.py BENCH_shards.json \
        [--min-cores 4] [--threshold 1.0]

Exit status 0 = pass (or recorded-only on a small runner),
1 = speedup bar missed, 2 = usage/shape error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("payload", type=pathlib.Path)
    parser.add_argument(
        "--min-cores",
        type=int,
        default=4,
        help="gate only when the sweep ran on at least this many cores",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.0,
        help="required best observed 4-shard process speedup (exclusive)",
    )
    args = parser.parse_args(argv)

    try:
        payload = json.loads(args.payload.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.payload}: {exc}", file=sys.stderr)
        return 2
    summary = payload.get("observed_speedup")
    if not isinstance(summary, dict) or "best" not in summary:
        print(
            "error: payload has no observed_speedup summary — regenerate "
            "with the current bench_shard_scaling.py",
            file=sys.stderr,
        )
        return 2

    cpu_count = payload.get("cpu_count") or 0
    best = summary["best"]
    per_size = summary.get("by_subscriptions", {})
    print(
        f"observed 4-shard process speedup: best {best}x "
        f"(per table size: {per_size}), sweep ran on {cpu_count} core(s)"
    )
    if cpu_count < args.min_cores:
        print(
            f"recorded only: {cpu_count} core(s) < {args.min_cores} — no room "
            "for worker processes to overlap, gate skipped"
        )
        return 0
    if best > args.threshold:
        print(f"PASS: {best}x > {args.threshold}x with {cpu_count} cores")
        return 0
    print(
        f"FAIL: best observed speedup {best}x did not clear "
        f"{args.threshold}x on a {cpu_count}-core runner",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

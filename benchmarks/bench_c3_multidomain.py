"""Experiment C3 — multi-domain deployment with inter-domain bridges.

"The use of mapping functions allows a single pub/sub system to be used
for multiple domains simultaneously and … inter-domain mapping by
simply adding additional functions" (paper §3.2).  One engine holds
subscriptions from three domains; job-domain publications are measured
for the cross-domain matches the bridge rules enable.
"""

from __future__ import annotations

from repro.core.engine import SToPSS
from repro.metrics import Table
from repro.model.parser import parse_event, parse_subscription
from repro.ontology.domains import build_demo_knowledge_base

CROSS_DOMAIN_EVENTS = [
    "(skill, COBOL programming)(graduation_year, 1980)",
    "(position, mainframe developer)(salary, 90000)",
    "(skill, automotive software)(degree, MSc)",
    "(skill, embedded software)(graduation_year, 1995)",
    "(device, gaming laptop)(price, 2500)",
    "(body_style, SUV)(price, 30000)",
]

SUBSCRIPTIONS = [
    ("jobs", "(degree = graduate degree)"),
    ("jobs", "(position = developer)"),
    ("electronics", "(device = computer)"),
    ("electronics", "(price_band = premium)"),
    ("vehicles", "(body_style = motor vehicle)"),
]


def _build_engine() -> SToPSS:
    engine = SToPSS(build_demo_knowledge_base())
    for index, (domain, text) in enumerate(SUBSCRIPTIONS):
        engine.subscribe(parse_subscription(text, sub_id=f"{domain}-{index}"))
    return engine


def test_c3_cross_domain_matching(benchmark, capsys):
    engine = _build_engine()
    events = [parse_event(text) for text in CROSS_DOMAIN_EVENTS]

    def run():
        return [{m.subscription.sub_id for m in engine.publish(event)} for event in events]

    results = benchmark(run)

    table = Table(
        "C3 — multi-domain matching with bridges",
        ["publication", "matched subscriptions"],
    )
    for event, matched in zip(events, results):
        table.add(event.format()[:48], ", ".join(sorted(matched)) or "-")
    with capsys.disabled():
        print()
        table.print()

    # shape: the jobs-domain COBOL resume reaches the electronics
    # subscription (bridge), and in-domain matches still work.
    assert "electronics-2" in results[0]  # COBOL -> mainframe -> computer
    assert "vehicles-4" in results[2]     # automotive bridge
    assert "electronics-2" in results[4]  # in-domain hierarchy
    assert "vehicles-4" in results[5]


def test_c3_bridges_off_lose_cross_domain_matches(benchmark, capsys):
    """Ablation: the same workload without bridge rules."""
    from repro.ontology.domains import (
        install_electronics_domain,
        install_jobs_domain,
        install_vehicles_domain,
    )
    from repro.ontology.knowledge_base import KnowledgeBase

    kb = KnowledgeBase("no-bridges")
    install_jobs_domain(kb)
    install_vehicles_domain(kb)
    install_electronics_domain(kb)
    engine = SToPSS(kb)
    for index, (domain, text) in enumerate(SUBSCRIPTIONS):
        engine.subscribe(parse_subscription(text, sub_id=f"{domain}-{index}"))
    events = [parse_event(text) for text in CROSS_DOMAIN_EVENTS]

    def run():
        return [{m.subscription.sub_id for m in engine.publish(event)} for event in events]

    results = benchmark(run)
    assert "electronics-2" not in results[0]
    assert "electronics-2" in results[4]  # in-domain matching unaffected

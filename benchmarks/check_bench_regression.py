"""CI benchmark-regression gate for the batched publish path.

Compares a freshly generated ``BENCH_publish.json`` (written by
``bench_c1_stage_overhead.py::test_c1_batch_vs_serial_publish``, output
path overridable via ``STOPSS_BENCH_OUTPUT``) against the committed
baseline, per ``(configuration, matcher)`` row:

* ``batch_predicate_evaluations`` must not increase by more than the
  tolerance — the number of predicate evaluations one trace pass costs
  is the deterministic proxy for publish cost;
* ``probes_saved`` (and its two-pass variant, which exercises the
  cross-publication memo on a trace replay) must not decrease by more
  than the tolerance;
* ``candidates_pruned`` — the demand-driven expansion's savings
  counter — must likewise not decrease by more than the tolerance: a
  drop means the interest index stopped vetoing derivations nobody
  subscribed to and the publish path slid back toward exhaustive
  expansion (same 10% policy as the predicate-eval counters).

The same gate serves ``BENCH_kernel.json`` (written by
``test_c1_kernel_backends``): its rows add the vectorized kernel's
deterministic counters — ``rows_evaluated`` / ``scalar_fallbacks``
bound above, ``vectorized_batches`` bound below — and every field is
``.get``-checked against the baseline row, so scalar rows (which
legitimately lack kernel counters) and old baselines never KeyError.

And ``BENCH_worlds.json`` (written by ``bench_worlds.py``): its
``world:*`` rows carry the deterministic world-build shape counters
(``world_concepts``, ``world_edges``, …), which are gated for **exact**
equality — a generated world that silently changes shape invalidates
every number measured against it, so no tolerance applies.

Counters are deterministic and machine-independent, so the tolerance
only absorbs intentional drift; tighten it if rows start flapping.

Wall-clock throughput (``publish_seconds`` / ``events_per_second`` per
row) is **recorded, not gated**: it is printed with every run and
written to the ``--report`` JSON (uploaded as a CI artifact) so the
throughput trajectory accumulates across PRs, but machine noise never
fails the gate.

Usage::

    python benchmarks/check_bench_regression.py BASELINE FRESH \
        [--tolerance 0.10] [--report throughput.json]

Exit status 0 = within tolerance, 1 = regression, 2 = usage/shape error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: rows where the baseline counter is tiny are skipped for the
#: lower-bound checks — a saved-probe count of 3 dropping to 2 is not a
#: regression signal, it is noise around an irrelevant code path.
MIN_BASELINE = 20

#: cost counters: must not *increase* past tolerance.  Fields are
#: looked up with ``.get`` and skipped when absent from the baseline
#: row, so one gate serves both payload families — ``BENCH_publish``
#: rows carry the predicate-evaluation counter, ``BENCH_kernel`` rows
#: add the vectorized kernel's deterministic work counters (scalar
#: rows legitimately lack them).
UPPER_FIELDS = (
    "batch_predicate_evaluations",
    "rows_evaluated",
    "scalar_fallbacks",
)

#: savings counters: must not *decrease* past tolerance.
LOWER_FIELDS = (
    "probes_saved",
    "probes_saved_two_passes",
    "candidates_pruned",
    "vectorized_batches",
)

#: deterministic world-build shape counters (``BENCH_worlds`` rows):
#: a seeded world must rebuild *identically*, so these are compared for
#: exact equality whenever the baseline row carries them.
EXACT_FIELDS = (
    "world_concepts",
    "world_edges",
    "world_leaves",
    "world_depth",
    "world_synonym_spellings",
    "world_rules",
    "world_terms",
)


def _rows(payload: dict) -> dict[tuple[str, str], dict]:
    return {
        (entry["configuration"], entry["matcher"]): entry
        for entry in payload.get("configurations", [])
    }


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Human-readable regression descriptions (empty = gate passes)."""
    failures: list[str] = []
    base_rows = _rows(baseline)
    fresh_rows = _rows(fresh)
    missing = sorted(set(base_rows) - set(fresh_rows))
    if missing:
        failures.append(f"rows missing from fresh run: {missing}")
    for key in sorted(set(base_rows) & set(fresh_rows)):
        base, new = base_rows[key], fresh_rows[key]
        label = "/".join(key)

        for field in EXACT_FIELDS:
            if field not in base:
                continue
            if new.get(field) != base[field]:
                failures.append(
                    f"{label}: {field} changed {base[field]} -> {new.get(field)} "
                    "(deterministic world shape; must match exactly)"
                )

        for field in UPPER_FIELDS:
            if field not in base:
                continue
            base_cost = base[field]
            new_cost = new.get(field, 0)
            if new_cost > base_cost * (1 + tolerance):
                failures.append(
                    f"{label}: {field} regressed {base_cost} -> {new_cost} "
                    f"(+{100 * (new_cost / max(base_cost, 1) - 1):.1f}%)"
                )

        for field in LOWER_FIELDS:
            base_saved = base.get(field, 0)
            new_saved = new.get(field, 0)
            if base_saved < MIN_BASELINE:
                continue
            if new_saved < base_saved * (1 - tolerance):
                failures.append(
                    f"{label}: {field} regressed {base_saved} -> {new_saved} "
                    f"(-{100 * (1 - new_saved / base_saved):.1f}%)"
                )
    return failures


def throughput_report(baseline: dict, fresh: dict) -> dict:
    """Record-only wall-clock summary per row: fresh seconds and
    events/sec next to the committed baseline's, with the speedup
    ratio.  Never gates — wall-clock is machine-dependent."""
    base_rows = _rows(baseline)
    rows = []
    for key, entry in sorted(_rows(fresh).items()):
        base = base_rows.get(key, {})
        base_eps = base.get("events_per_second", 0.0)
        fresh_eps = entry.get("events_per_second", 0.0)
        rows.append({
            "configuration": key[0],
            "matcher": key[1],
            "publish_seconds": entry.get("publish_seconds", 0.0),
            "publish_seconds_two_passes": entry.get("publish_seconds_two_passes", 0.0),
            "events_per_second": fresh_eps,
            "events_per_second_first_pass": entry.get("events_per_second_first_pass", 0.0),
            "baseline_events_per_second": base_eps,
            "speedup_vs_baseline": (fresh_eps / base_eps) if base_eps else None,
        })
    return {"throughput": rows}


def _print_throughput(report: dict) -> None:
    print("publish throughput (record-only, not gated):")
    for row in report["throughput"]:
        speedup = row["speedup_vs_baseline"]
        suffix = f" ({speedup:.2f}x vs baseline)" if speedup else ""
        print(
            f"  {row['configuration']}/{row['matcher']}: "
            f"{row['events_per_second']:.1f} events/s "
            f"({row['publish_seconds_two_passes']:.3f}s two-pass){suffix}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("fresh", type=pathlib.Path)
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument(
        "--report",
        type=pathlib.Path,
        default=None,
        help="write the record-only throughput summary to this JSON path",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        fresh = json.loads(args.fresh.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot load benchmark payloads: {exc}", file=sys.stderr)
        return 2
    if not _rows(baseline) or not _rows(fresh):
        print("benchmark payloads carry no configuration rows", file=sys.stderr)
        return 2

    report = throughput_report(baseline, fresh)
    _print_throughput(report)
    if args.report is not None:
        args.report.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote throughput report to {args.report}")

    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print(f"benchmark regression gate FAILED ({len(failures)} finding(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    rows = len(_rows(fresh))
    print(
        f"benchmark regression gate passed: {rows} rows within "
        f"{100 * args.tolerance:.0f}% of baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""CI benchmark-regression gate for the batched publish path.

Compares a freshly generated ``BENCH_publish.json`` (written by
``bench_c1_stage_overhead.py::test_c1_batch_vs_serial_publish``, output
path overridable via ``STOPSS_BENCH_OUTPUT``) against the committed
baseline, per ``(configuration, matcher)`` row:

* ``batch_predicate_evaluations`` must not increase by more than the
  tolerance — the number of predicate evaluations one trace pass costs
  is the deterministic proxy for publish cost;
* ``probes_saved`` (and its two-pass variant, which exercises the
  cross-publication memo on a trace replay) must not decrease by more
  than the tolerance.

Counters are deterministic and machine-independent, so the tolerance
only absorbs intentional drift; tighten it if rows start flapping.

Usage::

    python benchmarks/check_bench_regression.py BASELINE FRESH [--tolerance 0.10]

Exit status 0 = within tolerance, 1 = regression, 2 = usage/shape error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: rows where the baseline counter is tiny are skipped for the
#: lower-bound checks — a saved-probe count of 3 dropping to 2 is not a
#: regression signal, it is noise around an irrelevant code path.
MIN_BASELINE = 20


def _rows(payload: dict) -> dict[tuple[str, str], dict]:
    return {
        (entry["configuration"], entry["matcher"]): entry
        for entry in payload.get("configurations", [])
    }


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Human-readable regression descriptions (empty = gate passes)."""
    failures: list[str] = []
    base_rows = _rows(baseline)
    fresh_rows = _rows(fresh)
    missing = sorted(set(base_rows) - set(fresh_rows))
    if missing:
        failures.append(f"rows missing from fresh run: {missing}")
    for key in sorted(set(base_rows) & set(fresh_rows)):
        base, new = base_rows[key], fresh_rows[key]
        label = "/".join(key)

        base_evals = base["batch_predicate_evaluations"]
        new_evals = new["batch_predicate_evaluations"]
        if new_evals > base_evals * (1 + tolerance):
            failures.append(
                f"{label}: batch predicate evaluations regressed "
                f"{base_evals} -> {new_evals} "
                f"(+{100 * (new_evals / max(base_evals, 1) - 1):.1f}%)"
            )

        for field in ("probes_saved", "probes_saved_two_passes"):
            base_saved = base.get(field, 0)
            new_saved = new.get(field, 0)
            if base_saved < MIN_BASELINE:
                continue
            if new_saved < base_saved * (1 - tolerance):
                failures.append(
                    f"{label}: {field} regressed {base_saved} -> {new_saved} "
                    f"(-{100 * (1 - new_saved / base_saved):.1f}%)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("fresh", type=pathlib.Path)
    parser.add_argument("--tolerance", type=float, default=0.10)
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        fresh = json.loads(args.fresh.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot load benchmark payloads: {exc}", file=sys.stderr)
        return 2
    if not _rows(baseline) or not _rows(fresh):
        print("benchmark payloads carry no configuration rows", file=sys.stderr)
        return 2

    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print(f"benchmark regression gate FAILED ({len(failures)} finding(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    rows = len(_rows(fresh))
    print(
        f"benchmark regression gate passed: {rows} rows within "
        f"{100 * args.tolerance:.0f}% of baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Experiment C4 — the information-loss tolerance knob.

"Some users may be satisfied with fewer results for their semantic
subscriptions, if the matching would be faster" (paper §3.2).  Sweeps
the system-wide generality bound and measures recall (vs. the unbounded
configuration) and the derived-event volume the engine had to process.
Expected shape: both rise monotonically with the bound — lower
tolerance really is cheaper, not merely filtered.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_engine
from repro.core.config import SemanticConfig
from repro.metrics import Table

BOUNDS = (0, 1, 2, 3, None)


def _run(engine, events):
    matches = 0
    derived = 0
    for event in events:
        derived += len(engine.explain(event).derived)
        matches += len(engine.publish(event))
    return matches, derived


@pytest.mark.parametrize("bound", BOUNDS, ids=lambda b: f"g{b}")
def test_c4_publish_latency_by_tolerance(benchmark, jobs_kb, semantic_workload, bound):
    subscriptions, events = semantic_workload
    engine = build_engine(jobs_kb, subscriptions, SemanticConfig(max_generality=bound))

    def run():
        return sum(len(engine.publish(event)) for event in events[:20])

    assert benchmark(run) >= 0


def test_c4_tolerance_recall_table(benchmark, jobs_kb, semantic_workload, capsys):
    subscriptions, events = semantic_workload
    table = Table(
        "C4 — tolerance sweep (recall vs unbounded)",
        ["max_generality", "matches", "recall", "derived events"],
    )
    series = {}

    def sweep():
        table.rows.clear()
        series.clear()
        for bound in BOUNDS:
            engine = build_engine(jobs_kb, subscriptions, SemanticConfig(max_generality=bound))
            series[bound] = _run(engine, events)
        unbounded_matches = series[None][0]
        for bound in BOUNDS:
            matches, derived = series[bound]
            table.add(
                "unlimited" if bound is None else bound,
                matches,
                matches / max(1, unbounded_matches),
                derived,
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table.print()

    # C4 shape: recall and work both grow monotonically with the bound.
    match_series = [series[b][0] for b in BOUNDS]
    derived_series = [series[b][1] for b in BOUNDS]
    assert match_series == sorted(match_series)
    assert derived_series == sorted(derived_series)
    assert match_series[0] < match_series[-1]

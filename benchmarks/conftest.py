"""Shared fixtures for the experiment/benchmark harness.

Every benchmark prints the table it reproduces (run with ``-s`` to see
them); EXPERIMENTS.md records the measured shapes against the paper's
claims.  Workload sizes are chosen so the full suite completes in a few
minutes on a laptop while still separating the algorithmic regimes.
"""

from __future__ import annotations

import pytest

from repro.core.config import SemanticConfig
from repro.core.engine import SToPSS
from repro.model.subscriptions import Subscription
from repro.ontology.domains import build_demo_knowledge_base, build_jobs_knowledge_base
from repro.workload.generator import (
    SemanticSpec,
    SemanticWorkloadGenerator,
    SyntheticSpec,
    SyntheticWorkloadGenerator,
)


@pytest.fixture(scope="session")
def jobs_kb():
    return build_jobs_knowledge_base()


@pytest.fixture(scope="session")
def demo_kb():
    return build_demo_knowledge_base()


@pytest.fixture(scope="session")
def semantic_workload(jobs_kb):
    """One fixed semantic workload shared by the stage/tolerance benches."""
    generator = SemanticWorkloadGenerator(jobs_kb, SemanticSpec.jobs(seed=1701))
    return generator.subscriptions(400), generator.events(100)


@pytest.fixture(scope="session")
def synthetic_workload():
    """Scaling workload for the matcher ablation (A1)."""
    generator = SyntheticWorkloadGenerator(SyntheticSpec(seed=1702))
    return generator.subscriptions(20_000), generator.events(200)


def build_engine(kb, subscriptions, config=None, matcher="counting") -> SToPSS:
    engine = SToPSS(kb, matcher=matcher, config=config or SemanticConfig())
    for subscription in subscriptions:
        # fresh Subscription with the same content: engines cannot share
        # subscription objects' ids across repeated builds
        engine.subscribe(
            Subscription(
                subscription.predicates,
                sub_id=subscription.sub_id,
                max_generality=subscription.max_generality,
            )
        )
    return engine

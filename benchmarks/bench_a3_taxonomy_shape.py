"""Ablation A3 — taxonomy shape vs. expansion cost.

DESIGN.md §5: events generalize *upward* (bounded by depth), the design
alternative — specializing subscriptions downward — explodes with
fan-out.  The bench sweeps synthetic taxonomies of varying depth and
fan-out and measures (a) upward event expansion, which grows with
depth only, and (b) the size a downward subscription expansion would
have (descendant count), which grows with fan-out^depth — the measured
justification for the event-side design.
"""

from __future__ import annotations

import pytest

from repro.core.config import SemanticConfig
from repro.core.pipeline import SemanticPipeline
from repro.metrics import Table
from repro.model.events import Event
from repro.ontology.knowledge_base import KnowledgeBase
from repro.ontology.taxonomy import Taxonomy

SHAPES = ((2, 2), (2, 4), (4, 2), (4, 4), (6, 2))  # (depth, fanout)


def _tree(depth: int, fanout: int) -> tuple[KnowledgeBase, str]:
    """A complete tree; returns the kb and one leaf term."""
    kb = KnowledgeBase()
    taxonomy = kb.add_domain("tree")
    taxonomy.add_concept("root")
    frontier = ["root"]
    for level in range(depth):
        next_frontier = []
        for parent in frontier:
            for child_index in range(fanout):
                child = f"{parent}.{child_index}"
                taxonomy.add_isa(child, parent)
                next_frontier.append(child)
        frontier = next_frontier
    return kb, frontier[0]


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"d{s[0]}f{s[1]}")
def test_a3_upward_expansion_cost(benchmark, shape):
    depth, fanout = shape
    kb, leaf = _tree(depth, fanout)
    pipeline = SemanticPipeline(kb, SemanticConfig())
    event = Event({"v": leaf})

    result = benchmark(pipeline.process_event, event)
    # upward expansion size == depth (one derived event per ancestor)
    assert len(result.derived) == 1 + depth


def test_a3_shape_table(benchmark, capsys):
    table = Table(
        "A3 — taxonomy shape: event-up vs subscription-down expansion",
        ["depth", "fanout", "concepts", "event-up derived", "sub-down candidates"],
    )
    recorded = {}

    def sweep():
        table.rows.clear()
        recorded.clear()
        for depth, fanout in SHAPES:
            kb, leaf = _tree(depth, fanout)
            taxonomy: Taxonomy = kb.taxonomy("tree")
            pipeline = SemanticPipeline(kb, SemanticConfig())
            upward = len(pipeline.process_event(Event({"v": leaf})).derived) - 1
            downward = len(taxonomy.descendants("root"))
            recorded[(depth, fanout)] = (upward, downward)
            table.add(depth, fanout, len(taxonomy), upward, downward)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table.print()

    # shape: upward cost tracks depth and ignores fan-out; downward
    # candidates explode with fan-out at fixed depth.
    assert recorded[(2, 2)][0] == recorded[(2, 4)][0] == 2
    assert recorded[(2, 4)][1] > recorded[(2, 2)][1]
    assert recorded[(4, 4)][1] > 10 * recorded[(4, 4)][0]

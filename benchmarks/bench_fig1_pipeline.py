"""Experiment F1 — Figure 1: the semantic stage pipeline.

Reproduces the architecture figure behaviourally: the paper's §1 resume
is pushed through every stage configuration; the bench measures the
pipeline cost per configuration and prints the derived-event counts
(the "new events" of Figure 1).
"""

from __future__ import annotations

import pytest

from repro.core.config import SemanticConfig
from repro.core.pipeline import SemanticPipeline
from repro.metrics import Table
from repro.model.parser import parse_event

PAPER_RESUME = (
    "(school, Toronto)(degree, PhD)(work experience, true)"
    "(graduation year, 1990)(job1, IBM)(period1, 1994-1997)"
    "(job2, Microsoft)(period2, 1999-present)(skill, COBOL programming)"
)

CONFIGS = {
    "syntactic": SemanticConfig.syntactic(),
    "synonyms": SemanticConfig.synonyms_only(),
    "hierarchy": SemanticConfig.hierarchy_only(),
    "mappings": SemanticConfig.mappings_only(),
    "syn+hier": SemanticConfig(enable_mappings=False),
    "full": SemanticConfig(),
}


@pytest.mark.parametrize("name", list(CONFIGS))
def test_fig1_pipeline_stage_configurations(benchmark, jobs_kb, name):
    config = CONFIGS[name]
    pipeline = SemanticPipeline(jobs_kb, config)
    event = parse_event(PAPER_RESUME)
    result = benchmark(pipeline.process_event, event)
    # Figure 1 behaviour: richer configurations derive more events.
    if name == "syntactic":
        assert len(result.derived) == 1
    if name == "full":
        assert len(result.derived) > 1
        assert result.iterations >= 1


def test_fig1_derived_event_table(benchmark, jobs_kb, capsys):
    """Prints the Figure 1 reproduction table."""
    event = parse_event(PAPER_RESUME)
    table = Table(
        "F1 / Figure 1 — pipeline expansion of the paper's resume",
        ["configuration", "derived events", "iterations", "max generality"],
    )
    counts = {}

    def sweep():
        table.rows.clear()
        counts.clear()
        for name, config in CONFIGS.items():
            pipeline = SemanticPipeline(jobs_kb, config)
            result = pipeline.process_event(event)
            counts[name] = len(result.derived)
            table.add(
                name,
                len(result.derived),
                result.iterations,
                max((d.generality for d in result.derived), default=0),
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table.print()
    # shape assertions: every stage adds derived events; the full
    # pipeline dominates every single-stage configuration.
    assert counts["syntactic"] == 1
    for single in ("synonyms", "hierarchy", "mappings"):
        assert counts[single] >= counts["syntactic"]
    assert counts["full"] >= max(counts["syn+hier"], counts["mappings"])

"""Experiment C1 — "the semantic stage … very fast without affecting
already good performance of the matching algorithms" (paper §3.2).

Measures publish latency over a 400-subscription table for each stage
configuration, and separately the bare matcher on the same root events,
isolating the semantic stage's overhead.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from benchmarks.conftest import build_engine
from repro.core.config import SemanticConfig
from repro.matching import HAVE_NUMPY
from repro.metrics import Table

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CONFIGS = {
    "syntactic": SemanticConfig.syntactic(),
    "synonyms": SemanticConfig.synonyms_only(),
    "syn+hier(g<=2)": SemanticConfig(enable_mappings=False, max_generality=2),
    "full(g<=2)": SemanticConfig(max_generality=2),
    "full": SemanticConfig(),
}


@pytest.mark.parametrize("name", list(CONFIGS))
def test_c1_publish_latency_by_configuration(benchmark, jobs_kb, semantic_workload, name):
    subscriptions, events = semantic_workload
    engine = build_engine(jobs_kb, subscriptions, CONFIGS[name])

    def run():
        total = 0
        for event in events[:25]:
            total += len(engine.publish(event))
        return total

    matches = benchmark(run)
    if name == "syntactic":
        assert matches >= 0
    else:
        assert matches > 0


def test_c1_overhead_table(benchmark, jobs_kb, semantic_workload, capsys):
    """Per-configuration work counters: match cost scales with derived
    events, not with stage bookkeeping (C1's hash-structure claim)."""
    import time

    subscriptions, events = semantic_workload
    table = Table(
        "C1 — semantic stage overhead (400 subscriptions, 100 events)",
        ["configuration", "matches", "derived/event", "ms/event"],
    )

    def sweep():
        table.rows.clear()
        for name, config in CONFIGS.items():
            engine = build_engine(jobs_kb, subscriptions, config)
            started = time.perf_counter()
            matches = 0
            derived = 0
            for event in events:
                derived += len(engine.explain(event).derived)
                matches += len(engine.publish(event))
            elapsed = time.perf_counter() - started
            table.add(name, matches, derived / len(events), 1000 * elapsed / len(events))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table.print()


def _serial_publish_evals(engine, events) -> tuple[int, dict[str, int]]:
    """Replay the pre-batching publish loop (one ``match`` per derived
    event) and return its predicate-evaluation total and match minima.

    The expansion runs under the engine's *active* interest view — the
    same demand-driven batch ``publish`` matches — so the serial/batch
    ratio isolates *batching*, and the two paths see identical
    truncation behavior under ``max_derived_events``."""
    best: dict[str, int] = {}
    before = engine.matcher.stats.predicate_evaluations
    for event in events:
        result = engine.pipeline.process_event(event, interest=engine.active_interest)
        for derived in result.derived:
            generality = derived.generality
            for sub in engine.matcher.match(derived.event):
                known = best.get(sub.sub_id)
                if known is None or generality < known:
                    best[sub.sub_id] = generality
    return engine.matcher.stats.predicate_evaluations - before, best


def test_c1_batch_vs_serial_publish(benchmark, jobs_kb, semantic_workload, capsys):
    """The tentpole's proof: one batched publish pass evaluates ≥2x
    fewer predicates than the per-derived-event loop on the jobfinder
    workload, for every indexed matcher and stage configuration.
    Results (plus a per-event trajectory with the trace replayed once,
    exercising the expansion cache) are recorded in
    ``BENCH_publish.json``.
    """
    import time

    subscriptions, events = semantic_workload
    table = Table(
        "C1 — batched publish vs serial re-match (400 subscriptions, 100 events)",
        [
            "configuration",
            "matcher",
            "serial evals",
            "batch evals",
            "evals ratio",
            "probes saved",
            "pruned",
            "cache hit%",
            "events/s",
        ],
    )
    payload: dict[str, object] = {
        "workload": "jobfinder",
        "subscriptions": len(subscriptions),
        "events": len(events),
        "configurations": [],
    }

    def sweep():
        table.rows.clear()
        payload["configurations"] = []
        for config_name, config in CONFIGS.items():
            for matcher_name in ("counting", "cluster"):
                serial_engine = build_engine(jobs_kb, subscriptions, config, matcher=matcher_name)
                serial_evals, serial_best = _serial_publish_evals(serial_engine, events)

                engine = build_engine(jobs_kb, subscriptions, config, matcher=matcher_name)
                before = engine.matcher.stats.predicate_evaluations
                batch_best: dict[str, int] = {}
                started = time.perf_counter()
                trajectory = []
                first_pass_evals = 0
                first_pass_probes_saved = 0
                first_pass_seconds = 0.0
                # interval baselines so trajectory samples report true
                # per-interval rates from the SAME counters the summary
                # aggregates (previously the samples only covered the
                # cold first pass and so always showed hit rate 0.0
                # while the two-pass summary showed 0.5)
                interval_hits = 0
                interval_lookups = 0
                published = 0
                # replay the trace twice: the second pass repeats every
                # publication, exercising the expansion cache.
                for pass_index in range(2):
                    for index, event in enumerate(events):
                        for match in engine.publish(event):
                            sub_id = match.subscription.sub_id
                            known = batch_best.get(sub_id)
                            if known is None or match.generality < known:
                                batch_best[sub_id] = match.generality
                        published += 1
                        if index % 20 == 19:
                            cache_info = engine.expansion_cache_info()
                            hits = cache_info["hits"]
                            lookups = hits + cache_info["misses"]
                            delta_lookups = lookups - interval_lookups
                            interval_rate = (
                                (hits - interval_hits) / delta_lookups
                                if delta_lookups
                                else 0.0
                            )
                            trajectory.append({
                                "pass": pass_index,
                                "published": published,
                                "predicate_evaluations":
                                    engine.matcher.stats.predicate_evaluations - before,
                                "probes_saved": engine.matcher.stats.probes_saved,
                                # cumulative, identical counters to the
                                # summary's expansion_cache block:
                                "cache_hit_rate": cache_info["hit_rate"],
                                "interval_cache_hit_rate": interval_rate,
                            })
                            interval_hits, interval_lookups = hits, lookups
                    if pass_index == 0:
                        # measured directly, in the same window as the
                        # serial baseline (one pass over the trace)
                        first_pass_evals = engine.matcher.stats.predicate_evaluations - before
                        first_pass_probes_saved = engine.matcher.stats.probes_saved
                        first_pass_seconds = time.perf_counter() - started
                elapsed = time.perf_counter() - started
                stats = engine.matcher.stats
                cache_info = engine.expansion_cache_info()

                # tolerance-filtered serial minima must agree with publish
                originals = {s.sub_id: s for s in engine.subscriptions()}
                filtered = {
                    sub_id: generality
                    for sub_id, generality in serial_best.items()
                    if originals[sub_id].max_generality is None
                    or generality <= originals[sub_id].max_generality
                }
                assert batch_best == filtered, (
                    f"{config_name}/{matcher_name} batch diverged from serial"
                )

                ratio = serial_evals / max(first_pass_evals, 1)
                total_events = 2 * len(events)
                interest = engine.interest_info()
                table.add(
                    config_name, matcher_name, serial_evals, first_pass_evals,
                    round(ratio, 2), first_pass_probes_saved,
                    interest["candidates_pruned"],
                    round(100 * cache_info["hit_rate"], 1),
                    round(total_events / elapsed, 1) if elapsed else 0.0,
                )
                payload["configurations"].append({
                    "configuration": config_name,
                    "matcher": matcher_name,
                    # one-pass window, directly comparable to serial:
                    "serial_predicate_evaluations": serial_evals,
                    "batch_predicate_evaluations": first_pass_evals,
                    "evals_ratio": ratio,
                    "probes_saved": first_pass_probes_saved,
                    # demand-driven expansion (gated like probes_saved)
                    "candidates_pruned": interest["candidates_pruned"],
                    "prune_checks": interest["prune_checks"],
                    "prune_hit_rate": interest["prune_hit_rate"],
                    "interest_index_size": interest["interest_index_size"],
                    # two-pass fields (trace replayed once more to
                    # exercise the expansion cache):
                    "probes_saved_two_passes": stats.probes_saved,
                    "expansion_cache": cache_info,
                    "derived_histogram": {
                        str(k): v for k, v in sorted(
                            engine.derived_histogram().items()
                        )
                    },
                    # wall-clock throughput (record-only in CI: noisy
                    # across machines, but the trajectory the ROADMAP's
                    # "fast as the hardware allows" goal is steered by)
                    "publish_seconds": first_pass_seconds,
                    "events_per_second_first_pass":
                        len(events) / first_pass_seconds if first_pass_seconds else 0.0,
                    "publish_seconds_two_passes": elapsed,
                    "events_per_second":
                        total_events / elapsed if elapsed else 0.0,
                    "trajectory": trajectory,
                })

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    # the CI benchmark-regression gate redirects the fresh run so it
    # can be diffed against the committed baseline
    out_path = pathlib.Path(
        os.environ.get("STOPSS_BENCH_OUTPUT", _REPO_ROOT / "BENCH_publish.json")
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        print()
        table.print()
        print(f"wrote {out_path}")

    # acceptance: ≥2x fewer predicate evaluations wherever the semantic
    # stage actually multiplies events (expansion factor ≥ 2); where it
    # does not (syntactic / synonyms-only rewrites), batching must at
    # least never cost extra evaluations.
    for entry in payload["configurations"]:  # type: ignore[union-attr]
        histogram = {int(k): v for k, v in entry["derived_histogram"].items()}
        publications = sum(histogram.values())
        derived_per_event = sum(k * v for k, v in histogram.items()) / publications
        if derived_per_event >= 2.0:
            assert entry["evals_ratio"] >= 2.0, entry
        else:
            assert entry["evals_ratio"] >= 0.99, entry


# -- PR 6: vectorized matching kernel ---------------------------------------------

KERNEL_BACKENDS = ("python",) + (("numpy",) if HAVE_NUMPY else ())


def test_c1_kernel_backends(benchmark, jobs_kb, semantic_workload, capsys):
    """Scalar vs vectorized kernel on the full-semantic jobfinder
    trace, measured on a *warm* trace replay (expansion cache, kernel
    memos, and batch plans filled by a first pass — the regime a broker
    replaying a workload trace actually runs in; cold throughput is
    capped by expansion cost, which no matching kernel can touch).
    Emits ``BENCH_kernel.json``: wall-clock ev/s record-only, kernel
    counters (``rows_evaluated``, ``scalar_fallbacks``,
    ``vectorized_batches``) deterministic and gated by
    ``check_bench_regression.py``."""
    import time

    subscriptions, events = semantic_workload
    table = Table(
        "C1 — matching kernel backends (full semantic, 400 subscriptions, 100 events)",
        [
            "matcher",
            "backend",
            "cold ev/s",
            "warm ev/s",
            "rows evaluated",
            "scalar fallbacks",
            "vec batches",
            "warm speedup",
        ],
    )
    payload: dict[str, object] = {
        "workload": "jobfinder",
        "configuration": "full",
        "subscriptions": len(subscriptions),
        "events": len(events),
        "configurations": [],
    }
    warm_rates: dict[tuple[str, str], float] = {}
    match_sets: dict[tuple[str, str], dict] = {}

    def sweep():
        table.rows.clear()
        payload["configurations"] = []
        warm_rates.clear()
        match_sets.clear()
        for matcher_name in ("counting", "cluster"):
            for backend in KERNEL_BACKENDS:
                config = SemanticConfig(matching_backend=backend)
                engine = build_engine(jobs_kb, subscriptions, config, matcher=matcher_name)
                best: dict[str, int] = {}
                started = time.perf_counter()
                for event in events:
                    for match in engine.publish(event):
                        sub_id = match.subscription.sub_id
                        known = best.get(sub_id)
                        if known is None or match.generality < known:
                            best[sub_id] = match.generality
                cold_seconds = time.perf_counter() - started
                match_sets[(matcher_name, backend)] = best
                # warm replay: same trace, counters sampled over one
                # pass (deterministic — plans and memos are hot)
                stats = engine.matcher.stats
                counters_before = stats.snapshot()
                warm_seconds = None
                for _ in range(3):
                    started = time.perf_counter()
                    for event in events:
                        engine.publish(event)
                    elapsed = time.perf_counter() - started
                    if warm_seconds is None or elapsed < warm_seconds:
                        warm_seconds = elapsed
                counters_after = stats.snapshot()
                warm = {
                    key: (counters_after.get(key, 0) - counters_before.get(key, 0)) // 3
                    for key in counters_after
                }
                cold_rate = len(events) / cold_seconds if cold_seconds else 0.0
                warm_rate = len(events) / warm_seconds if warm_seconds else 0.0
                warm_rates[(matcher_name, backend)] = warm_rate
                row_key = f"{matcher_name}@{backend}"
                table.add(
                    matcher_name,
                    backend,
                    round(cold_rate, 1),
                    round(warm_rate, 1),
                    warm.get("rows_evaluated", 0),
                    warm.get("scalar_fallbacks", 0),
                    warm.get("vectorized_batches", 0),
                    round(
                        warm_rate / warm_rates.get((matcher_name, "python"), warm_rate), 2
                    ),
                )
                payload["configurations"].append({
                    # the regression gate keys rows by (configuration,
                    # matcher); the kernel dimension rides in "matcher"
                    "configuration": "full",
                    "matcher": row_key,
                    "backend": backend,
                    "resolved_matcher": engine.matcher.name,
                    # deterministic kernel counters, one warm pass:
                    "rows_evaluated": warm.get("rows_evaluated", 0),
                    "scalar_fallbacks": warm.get("scalar_fallbacks", 0),
                    "vectorized_batches": warm.get("vectorized_batches", 0),
                    "batch_predicate_evaluations": warm.get("predicate_evaluations", 0),
                    "probes_saved": warm.get("probes_saved", 0),
                    # wall-clock (record-only in CI):
                    "publish_seconds": cold_seconds,
                    "events_per_second_first_pass": cold_rate,
                    "publish_seconds_two_passes": warm_seconds,
                    "events_per_second": warm_rate,
                })

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    out_path = pathlib.Path(
        os.environ.get("STOPSS_KERNEL_BENCH_OUTPUT", _REPO_ROOT / "BENCH_kernel.json")
    )
    for matcher_name in ("counting", "cluster"):
        for backend in KERNEL_BACKENDS[1:]:
            payload.setdefault("speedups", {})[f"{matcher_name}@{backend}"] = (
                warm_rates[(matcher_name, backend)] / warm_rates[(matcher_name, "python")]
            )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        print()
        table.print()
        print(f"wrote {out_path}")

    # backends must agree exactly on the match minima...
    for matcher_name in ("counting", "cluster"):
        for backend in KERNEL_BACKENDS[1:]:
            assert (
                match_sets[(matcher_name, backend)] == match_sets[(matcher_name, "python")]
            ), f"{matcher_name}@{backend} diverged from scalar"
            # ...and beat scalar clearly on the warm trace.  The target
            # in BENCH_kernel.json is >=4x; the in-test bar is looser
            # because wall-clock on shared CI runners is noisy.
            speedup = (
                warm_rates[(matcher_name, backend)] / warm_rates[(matcher_name, "python")]
            )
            assert speedup >= 2.0, f"{matcher_name}@{backend} warm speedup {speedup:.2f}x"

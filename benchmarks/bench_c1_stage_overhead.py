"""Experiment C1 — "the semantic stage … very fast without affecting
already good performance of the matching algorithms" (paper §3.2).

Measures publish latency over a 400-subscription table for each stage
configuration, and separately the bare matcher on the same root events,
isolating the semantic stage's overhead.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_engine
from repro.core.config import SemanticConfig
from repro.metrics import Table

CONFIGS = {
    "syntactic": SemanticConfig.syntactic(),
    "synonyms": SemanticConfig.synonyms_only(),
    "syn+hier(g<=2)": SemanticConfig(enable_mappings=False, max_generality=2),
    "full(g<=2)": SemanticConfig(max_generality=2),
    "full": SemanticConfig(),
}


@pytest.mark.parametrize("name", list(CONFIGS))
def test_c1_publish_latency_by_configuration(
    benchmark, jobs_kb, semantic_workload, name
):
    subscriptions, events = semantic_workload
    engine = build_engine(jobs_kb, subscriptions, CONFIGS[name])

    def run():
        total = 0
        for event in events[:25]:
            total += len(engine.publish(event))
        return total

    matches = benchmark(run)
    if name == "syntactic":
        assert matches >= 0
    else:
        assert matches > 0


def test_c1_overhead_table(benchmark, jobs_kb, semantic_workload, capsys):
    """Per-configuration work counters: match cost scales with derived
    events, not with stage bookkeeping (C1's hash-structure claim)."""
    import time

    subscriptions, events = semantic_workload
    table = Table(
        "C1 — semantic stage overhead (400 subscriptions, 100 events)",
        ["configuration", "matches", "derived/event", "ms/event"],
    )

    def sweep():
        table.rows.clear()
        for name, config in CONFIGS.items():
            engine = build_engine(jobs_kb, subscriptions, config)
            started = time.perf_counter()
            matches = 0
            derived = 0
            for event in events:
                derived += len(engine.explain(event).derived)
                matches += len(engine.publish(event))
            elapsed = time.perf_counter() - started
            table.add(name, matches, derived / len(events),
                      1000 * elapsed / len(events))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table.print()

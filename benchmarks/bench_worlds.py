"""Stress-world benchmark: build cost, publish throughput, and churn
sustained on the generated mega-ontology worlds (PR 10).

For every tier-1 world (jobfinder, mega-small, mega-deep) the sweep
records one gated row in ``BENCH_worlds.json``:

* the deterministic world-build counters (concepts, edges, leaves,
  depth, synonym spellings, rules, terms) — gated for **exact**
  equality by ``check_bench_regression.py``: a generated world that
  silently changes shape invalidates every number measured on it;
* ``batch_predicate_evaluations`` (upper-gated) and ``probes_saved`` /
  ``candidates_pruned`` (lower-gated) for a seeded publish pass — the
  same deterministic cost/savings proxies the publish gate uses;
* record-only wall-clock: build seconds, cold/warm events-per-second,
  closure-memo and InterestIndex size trajectories, and the
  flash-crowd churn rate (≥1k subscribe/unsubscribe ops, with the
  leak-freedom assertion: the footprint must return to baseline).

The 100k+-term worlds run the same sweep into the record-only
``large_worlds`` section when ``STOPSS_WORLDS_LARGE=1`` (set when the
committed baseline is regenerated and in the nightly CI leg) — PR-path
CI skips them so the gate compares small-world rows only.

``STOPSS_BENCH_WORLDS_OUTPUT`` redirects a fresh run's payload.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.core.engine import SToPSS
from repro.metrics import Table
from repro.workload.worlds import FlashCrowdDriver, FlashCrowdSpec, build_world

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: gated rows (small worlds; PR-path CI rebuilds these)
CI_WORLDS = ("jobfinder", "mega-small", "mega-deep")
#: record-only rows (nightly / baseline regeneration only)
LARGE_WORLDS = ("mega-100k", "mega-wide-100k")

SUBSCRIPTIONS = 120
EVENTS = 30
#: the large worlds run a shorter stream — the cold pass fills 100k-term
#: closure memos, which is the cost being measured, not amortized
LARGE_SUBSCRIPTIONS = 60
LARGE_EVENTS = 10
WORKLOAD_SEED = 1709

CHURN = FlashCrowdSpec(residents=60, churn_ops=1_200, burst=60, warm_events=5, seed=17)


def _closure_memo_size(kb) -> int:
    stats = kb.concept_table().stats()
    return stats["up_closures"] + stats["down_closures"]


def _sweep_world(name: str, *, subscriptions: int, events: int) -> dict[str, object]:
    world = build_world(name)
    engine = SToPSS(world.kb)
    generator = world.generator(seed=WORKLOAD_SEED)

    memo_after_build = _closure_memo_size(world.kb)
    for subscription in generator.subscriptions(subscriptions):
        engine.subscribe(subscription)
    memo_after_subscribe = _closure_memo_size(world.kb)
    index_after_subscribe = engine.interest_info()["interest_index_size"]

    stream = generator.events(events)
    stats_before = engine.matcher.stats.predicate_evaluations
    started = time.perf_counter()
    cold_matches = sum(len(engine.publish(event)) for event in stream)
    cold_seconds = time.perf_counter() - started
    batch_evals = engine.matcher.stats.predicate_evaluations - stats_before

    started = time.perf_counter()
    warm_matches = sum(len(engine.publish(event)) for event in stream)
    warm_seconds = time.perf_counter() - started
    assert warm_matches == cold_matches, f"warm pass diverged on {name}"

    interest = engine.interest_info()
    churn_report = FlashCrowdDriver(
        world.generator(seed=WORKLOAD_SEED + 1), CHURN
    ).run(SToPSS(world.kb))
    assert not churn_report.leaked, (
        f"flash-crowd storm leaked engine state on {name}",
        churn_report.as_dict(),
    )

    return {
        "configuration": f"world:{name}",
        "matcher": engine.stats()["matcher"],
        # deterministic shape counters — exact-gated
        **world.counters,
        # deterministic publish counters — tolerance-gated
        "batch_predicate_evaluations": batch_evals,
        "probes_saved": engine.matcher.stats.probes_saved,
        "candidates_pruned": interest["candidates_pruned"],
        # record-only wall-clock and trajectories
        "subscriptions": subscriptions,
        "events": events,
        "matches": cold_matches,
        "build_seconds": world.build_seconds,
        "publish_seconds": warm_seconds,
        "cold_publish_seconds": cold_seconds,
        "events_per_second": events / warm_seconds if warm_seconds else 0.0,
        "cold_events_per_second": events / cold_seconds if cold_seconds else 0.0,
        "closure_memo_trajectory": {
            "after_build": memo_after_build,
            "after_subscribe": memo_after_subscribe,
            "after_publish": _closure_memo_size(world.kb),
        },
        "interest_index_trajectory": {
            "after_subscribe": index_after_subscribe,
            "after_publish": interest["interest_index_size"],
        },
        "churn": churn_report.as_dict(),
    }


def test_world_build_publish_and_churn(benchmark, capsys):
    """Per-world build/publish/churn sweep with deterministic shape and
    publish counters; the flash-crowd leak assertion is the acceptance
    signal, wall-clock is record-only."""
    run_large = os.environ.get("STOPSS_WORLDS_LARGE") == "1"
    table = Table(
        "stress worlds — build, publish, flash-crowd churn "
        f"({SUBSCRIPTIONS} subscriptions, {EVENTS} events, "
        f"{CHURN.churn_ops}-op storm)",
        [
            "world",
            "concepts",
            "terms",
            "rules",
            "build-s",
            "cold-ev/s",
            "warm-ev/s",
            "churn-ops/s",
            "pruned",
        ],
    )
    payload: dict[str, object] = {
        "workload_seed": WORKLOAD_SEED,
        "churn_spec": {
            "residents": CHURN.residents,
            "churn_ops": CHURN.churn_ops,
            "burst": CHURN.burst,
            "seed": CHURN.seed,
        },
        "cpu_count": os.cpu_count(),
        "gate_model": (
            "world_* shape counters are exact-gated; "
            "batch_predicate_evaluations upper- and probes_saved/"
            "candidates_pruned lower-gated at the standard tolerance; "
            "build/publish/churn wall-clock and the large_worlds "
            "section are record-only (large rows regenerate only under "
            "STOPSS_WORLDS_LARGE=1)"
        ),
        "configurations": [],
        "large_worlds": [],
    }

    def sweep():
        table.rows.clear()
        payload["configurations"] = []
        payload["large_worlds"] = []
        legs = [
            (name, "configurations", SUBSCRIPTIONS, EVENTS) for name in CI_WORLDS
        ]
        if run_large:
            legs += [
                (name, "large_worlds", LARGE_SUBSCRIPTIONS, LARGE_EVENTS)
                for name in LARGE_WORLDS
            ]
        for name, section, subscriptions, events in legs:
            row = _sweep_world(name, subscriptions=subscriptions, events=events)
            payload[section].append(row)
            table.add(
                name,
                row["world_concepts"],
                row["world_terms"],
                row["world_rules"],
                round(row["build_seconds"], 3),
                round(row["cold_events_per_second"], 1),
                round(row["events_per_second"], 1),
                round(row["churn"]["churn_ops_per_second"], 0),
                row["candidates_pruned"],
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    out_path = pathlib.Path(
        os.environ.get("STOPSS_BENCH_WORLDS_OUTPUT", _REPO_ROOT / "BENCH_worlds.json")
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        print()
        table.print()
        if not run_large:
            print(
                f"large worlds ({', '.join(LARGE_WORLDS)}) skipped — "
                "set STOPSS_WORLDS_LARGE=1 to sweep them"
            )
        print(f"wrote {out_path}")

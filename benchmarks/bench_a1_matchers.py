"""Ablation A1 — syntactic matcher scaling.

The substrate the semantic layer wraps: brute force vs. the counting
algorithm (paper ref [1]) vs. the cluster matcher (paper ref [4]) as
the subscription table grows.  Expected shape: the indexed algorithms
beat naive by a factor that widens with table size (naive is O(S·P)
per event; counting/cluster touch only satisfied predicates / probed
clusters).
"""

from __future__ import annotations

import time

import pytest

from repro.core.pipeline import PipelineResult
from repro.core.provenance import DerivationStep, DerivedEvent
from repro.matching import HAVE_NUMPY, create_matcher
from repro.metrics import Table
from repro.model.subscriptions import Subscription

SIZES = (1_000, 5_000, 20_000)
MATCHERS = ("naive", "counting", "cluster")
#: batch-capable matchers across kernels; without an engine-bound
#: interner the numpy rows measure the scalar-fallback path plus the
#: batch-plan cache (the interned kernel is measured by the C1 kernel
#: benchmark, which runs a full engine)
BATCH_MATCHERS = ("counting", "cluster") + (
    ("counting-numpy", "cluster-numpy") if HAVE_NUMPY else ()
)


def _load(matcher, subscriptions):
    for subscription in subscriptions:
        matcher.insert(Subscription(subscription.predicates, sub_id=subscription.sub_id))


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s}subs")
@pytest.mark.parametrize("name", MATCHERS)
def test_a1_match_throughput(benchmark, synthetic_workload, name, size):
    subscriptions, events = synthetic_workload
    matcher = create_matcher(name)
    _load(matcher, subscriptions[:size])
    sample = events[:50]

    def run():
        return sum(len(matcher.match(event)) for event in sample)

    matches = benchmark(run)
    assert matches >= 0


def test_a1_scaling_table(benchmark, synthetic_workload, capsys):
    subscriptions, events = synthetic_workload
    sample = events[:50]
    table = Table(
        "A1 — matcher scaling (ms per event)",
        [
            "subscriptions",
            "naive",
            "counting",
            "cluster",
            "naive/counting",
            "naive/cluster",
        ],
    )
    timings: dict[tuple[str, int], float] = {}

    def sweep():
        table.rows.clear()
        timings.clear()
        for size in SIZES:
            row: dict[str, float] = {}
            reference = None
            for name in MATCHERS:
                matcher = create_matcher(name)
                _load(matcher, subscriptions[:size])
                started = time.perf_counter()
                total = sum(len(matcher.match(event)) for event in sample)
                elapsed = (time.perf_counter() - started) / len(sample)
                row[name] = elapsed * 1000
                timings[(name, size)] = elapsed
                if reference is None:
                    reference = total
                else:
                    assert total == reference, f"{name} diverged at {size}"
            table.add(
                size, row["naive"], row["counting"], row["cluster"],
                row["naive"] / max(row["counting"], 1e-9),
                row["naive"] / max(row["cluster"], 1e-9),
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table.print()

    # shape: at the largest size the indexed matchers win clearly.
    largest = SIZES[-1]
    assert timings[("naive", largest)] > timings[("counting", largest)]
    assert timings[("naive", largest)] > timings[("cluster", largest)]


# -- batched matching: cross-derivation predicate sharing -----------------------

_BATCH_WIDTH = 8  # siblings per publication, each rewriting one pair


def _synthetic_batches(events, width=_BATCH_WIDTH):
    """Delta-encoded expansion batches shaped like the semantic
    pipeline's output: each sibling rewrites exactly one attribute of
    the root (values borrowed from other events, so probes stay
    realistic)."""
    pools: dict[str, list] = {}
    for event in events:
        for attribute, value in event.items():
            pools.setdefault(attribute, []).append(value)
    batches = []
    for index, event in enumerate(events):
        root = DerivedEvent.original(event)
        derived = [root]
        attributes = event.attributes()
        for k in range(width):
            attribute = attributes[k % len(attributes)]
            pool = pools[attribute]
            alternative = pool[(index + k + 1) % len(pool)]
            if alternative == event[attribute]:
                continue
            step = DerivationStep(
                stage="hierarchy",
                description=f"rewrite {attribute}",
                attribute=attribute,
                generality=1 + k // len(attributes),
            )
            derived.append(root.extend(event.with_value(attribute, alternative), step))
        batches.append(PipelineResult.from_derived(event, derived))
    return batches


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s}subs")
@pytest.mark.parametrize("name", BATCH_MATCHERS)
def test_a1_batch_throughput(benchmark, synthetic_workload, name, size):
    subscriptions, events = synthetic_workload
    matcher = create_matcher(name)
    _load(matcher, subscriptions[:size])
    batches = _synthetic_batches(events[:50])

    def run():
        return sum(len(matcher.match_batch(batch)) for batch in batches)

    matches = benchmark(run)
    assert matches >= 0


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_a1_backend_batch_equivalence(synthetic_workload):
    """The numpy variants reproduce the scalar batch results exactly on
    the synthetic workload — including here, where no interner is bound
    and every pair resolves through the scalar-fallback path."""
    subscriptions, events = synthetic_workload
    batches = _synthetic_batches(events[:20])
    for scalar_name in ("counting", "cluster"):
        scalar = create_matcher(scalar_name)
        vectorized = create_matcher(f"{scalar_name}-numpy")
        _load(scalar, subscriptions[:5_000])
        _load(vectorized, subscriptions[:5_000])
        for batch in batches:
            expected = {
                sub_id: generality
                for sub_id, (generality, _) in scalar.match_batch(batch).items()
            }
            observed = {
                sub_id: generality
                for sub_id, (generality, _) in vectorized.match_batch(batch).items()
            }
            assert observed == expected, f"{scalar_name} backend divergence"


def test_a1_batch_vs_serial_table(benchmark, synthetic_workload, capsys):
    """Predicate-evaluation and wall-clock comparison of one
    ``match_batch`` pass against the per-derived-event loop it
    replaced, at the largest table size."""
    subscriptions, events = synthetic_workload
    size = SIZES[-1]
    batches = _synthetic_batches(events[:50])
    table = Table(
        f"A1 — batched vs serial matching ({size} subscriptions, "
        f"{_BATCH_WIDTH + 1} derived/publication)",
        [
            "matcher",
            "serial evals",
            "batch evals",
            "evals ratio",
            "probes saved",
            "serial ms",
            "batch ms",
        ],
    )
    ratios: dict[str, float] = {}

    def sweep():
        table.rows.clear()
        ratios.clear()
        for name in ("counting", "cluster"):
            matcher = create_matcher(name)
            _load(matcher, subscriptions[:size])

            matcher.stats.reset()
            started = time.perf_counter()
            serial_best: dict[str, int] = {}
            for batch in batches:
                for derived in batch.derived:
                    generality = derived.generality
                    for sub in matcher.match(derived.event):
                        known = serial_best.get(sub.sub_id)
                        if known is None or generality < known:
                            serial_best[sub.sub_id] = generality
            serial_elapsed = time.perf_counter() - started
            serial_evals = matcher.stats.predicate_evaluations

            matcher.stats.reset()
            started = time.perf_counter()
            batch_best: dict[str, int] = {}
            for batch in batches:
                for sub_id, (generality, _) in matcher.match_batch(batch).items():
                    known = batch_best.get(sub_id)
                    if known is None or generality < known:
                        batch_best[sub_id] = generality
            batch_elapsed = time.perf_counter() - started
            batch_evals = matcher.stats.predicate_evaluations

            assert batch_best == serial_best, f"{name} batch/serial diverged"
            ratio = serial_evals / max(batch_evals, 1)
            ratios[name] = ratio
            table.add(
                name,
                serial_evals,
                batch_evals,
                round(ratio, 2),
                matcher.stats.probes_saved,
                round(serial_elapsed * 1000, 2),
                round(batch_elapsed * 1000, 2),
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table.print()

    # the acceptance bar: cross-derivation sharing at least halves the
    # predicate evaluations on sibling-heavy batches.
    assert ratios["counting"] >= 2.0
    assert ratios["cluster"] >= 2.0

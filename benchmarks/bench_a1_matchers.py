"""Ablation A1 — syntactic matcher scaling.

The substrate the semantic layer wraps: brute force vs. the counting
algorithm (paper ref [1]) vs. the cluster matcher (paper ref [4]) as
the subscription table grows.  Expected shape: the indexed algorithms
beat naive by a factor that widens with table size (naive is O(S·P)
per event; counting/cluster touch only satisfied predicates / probed
clusters).
"""

from __future__ import annotations

import time

import pytest

from repro.matching import create_matcher
from repro.metrics import Table
from repro.model.subscriptions import Subscription

SIZES = (1_000, 5_000, 20_000)
MATCHERS = ("naive", "counting", "cluster")


def _load(matcher, subscriptions):
    for subscription in subscriptions:
        matcher.insert(
            Subscription(subscription.predicates, sub_id=subscription.sub_id)
        )


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s}subs")
@pytest.mark.parametrize("name", MATCHERS)
def test_a1_match_throughput(benchmark, synthetic_workload, name, size):
    subscriptions, events = synthetic_workload
    matcher = create_matcher(name)
    _load(matcher, subscriptions[:size])
    sample = events[:50]

    def run():
        return sum(len(matcher.match(event)) for event in sample)

    matches = benchmark(run)
    assert matches >= 0


def test_a1_scaling_table(benchmark, synthetic_workload, capsys):
    subscriptions, events = synthetic_workload
    sample = events[:50]
    table = Table(
        "A1 — matcher scaling (ms per event)",
        ["subscriptions", "naive", "counting", "cluster",
         "naive/counting", "naive/cluster"],
    )
    timings: dict[tuple[str, int], float] = {}

    def sweep():
        table.rows.clear()
        timings.clear()
        for size in SIZES:
            row: dict[str, float] = {}
            reference = None
            for name in MATCHERS:
                matcher = create_matcher(name)
                _load(matcher, subscriptions[:size])
                started = time.perf_counter()
                total = sum(len(matcher.match(event)) for event in sample)
                elapsed = (time.perf_counter() - started) / len(sample)
                row[name] = elapsed * 1000
                timings[(name, size)] = elapsed
                if reference is None:
                    reference = total
                else:
                    assert total == reference, f"{name} diverged at {size}"
            table.add(
                size, row["naive"], row["counting"], row["cluster"],
                row["naive"] / max(row["counting"], 1e-9),
                row["naive"] / max(row["cluster"], 1e-9),
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table.print()

    # shape: at the largest size the indexed matchers win clearly.
    largest = SIZES[-1]
    assert timings[("naive", largest)] > timings[("counting", largest)]
    assert timings[("naive", largest)] > timings[("cluster", largest)]

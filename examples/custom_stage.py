"""Extending S-ToPSS: a custom semantic stage + knowledge persistence.

Two library extension points in one script:

1. **Custom stages** — the Figure 1 pipeline accepts additional stages
   alongside the paper's three.  Here a morphological stage stems
   "java developers" to the known concept "java developer", which the
   hierarchy stage then generalizes — the stages compose through the
   fixpoint loop with full provenance.
2. **Persistence** — the knowledge base snapshots to JSON and reloads
   with identical matching behaviour (DAML+OIL remains the interchange
   format; JSON is the operational one).

Run:  python examples/custom_stage.py
"""

import tempfile
from pathlib import Path

from repro import SToPSS, parse_event, parse_subscription
from repro.core import StemmingStage
from repro.ontology import load_kb, save_kb
from repro.ontology.domains import build_jobs_knowledge_base


def main() -> None:
    kb = build_jobs_knowledge_base()
    engine = SToPSS(kb, extra_stages=(StemmingStage(kb),))
    engine.subscribe(parse_subscription("(position = developer)", sub_id="dev-jobs"))

    # "java developers" is in no thesaurus or taxonomy — the stemming
    # stage bridges it to the known concept, then the hierarchy climbs.
    event = parse_event("(job_title, java developers)")
    print(f"publishing {event.format()}\n")
    for match in engine.publish(event):
        print(match.explain())

    # --- persistence ------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "jobs-kb.json"
        save_kb(kb, path, skip_unserializable=True)
        print(f"\nknowledge base saved to JSON ({path.stat().st_size} bytes)")
        reloaded = load_kb(path)
        engine2 = SToPSS(reloaded, extra_stages=(StemmingStage(reloaded),))
        engine2.subscribe(parse_subscription("(position = developer)", sub_id="dev-jobs"))
        matches = engine2.publish(event)
        print(f"reloaded knowledge base reproduces the match: {bool(matches)}")


if __name__ == "__main__":
    main()

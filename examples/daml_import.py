"""DAML+OIL ontology import — the paper's future-work item, working.

"Our future work looks at automating translation of ontologies
expressed in DAML+OIL into a more efficient representation suitable for
S-ToPSS" (paper §2).  This example imports a DAML+OIL document at
runtime, matches against it, exports the internal representation back
to DAML+OIL, and shows the round-trip is faithful.

Run:  python examples/daml_import.py
"""

from repro import KnowledgeBase, SToPSS, parse_event, parse_subscription
from repro.ontology import export_daml, import_daml

WINE_DAML = """<rdf:RDF
    xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
    xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
    xmlns:daml="http://www.daml.org/2001/03/daml+oil#">
  <daml:Class rdf:ID="Beverage"/>
  <daml:Class rdf:ID="Wine">
    <rdfs:subClassOf rdf:resource="#Beverage"/>
  </daml:Class>
  <daml:Class rdf:ID="RedWine">
    <rdfs:subClassOf rdf:resource="#Wine"/>
    <daml:sameClassAs rdf:resource="#VinRouge"/>
  </daml:Class>
  <daml:Class rdf:ID="Merlot">
    <rdfs:subClassOf rdf:resource="#RedWine"/>
  </daml:Class>
  <daml:Class rdf:ID="Chardonnay">
    <rdfs:subClassOf rdf:resource="#WhiteWine"/>
  </daml:Class>
  <daml:Class rdf:ID="WhiteWine">
    <rdfs:subClassOf rdf:resource="#Wine"/>
  </daml:Class>
  <daml:DatatypeProperty rdf:ID="drink">
    <daml:samePropertyAs rdf:resource="#beverage_kind"/>
  </daml:DatatypeProperty>
</rdf:RDF>"""


def main() -> None:
    kb = import_daml(WINE_DAML, KnowledgeBase("wine-kb"), "wines")
    taxonomy = kb.taxonomy("wines")
    print(f"imported {len(taxonomy)} concepts; depth {taxonomy.depth()}")
    print(f"roots: {taxonomy.roots()}")

    engine = SToPSS(kb)
    engine.subscribe(parse_subscription("(drink = wine)", sub_id="sommelier"))
    engine.subscribe(parse_subscription("(drink = red wine)", sub_id="red-only"))

    for text in (
        "(drink, merlot)",
        "(beverage_kind, chardonnay)",   # property synonym via DAML
        "(drink, vin rouge)",            # class equivalence via DAML
    ):
        event = parse_event(text)
        print(f"\npublishing {event.format()}")
        for match in engine.publish(event):
            print(f"  -> {match.subscription.sub_id} (generality {match.generality})")

    # Round-trip: export the efficient internal form back to DAML+OIL.
    document = export_daml(taxonomy)
    reimported = import_daml(document, KnowledgeBase(), "wines")
    same = sorted(t.lower() for t in reimported.taxonomy("wines").terms()) == sorted(
        t.lower() for t in taxonomy.terms()
    )
    print(f"\nexport/import round-trip faithful: {same}")


if __name__ == "__main__":
    main()

"""The demonstration's core comparison: the same workload in the demo's
two modes (paper §4 — "the application can run in two different modes:
semantic or syntactic").

One seeded job-finder workload is replayed against two brokers; the
table shows how many candidate/company connections syntax-only matching
misses.

Run:  python examples/semantic_vs_syntactic.py
"""

from repro.broker import Broker
from repro.core import SemanticConfig
from repro.metrics import Table
from repro.ontology.domains import build_jobs_knowledge_base
from repro.workload import JobFinderScenario, JobFinderSpec


def main() -> None:
    spec = JobFinderSpec(n_companies=10, n_candidates=40, seed=42)
    table = Table(
        "semantic vs syntactic matching",
        ["mode", "subscriptions", "resumes", "matches", "semantic-only", "delivered"],
    )
    reports = {}
    for mode, config in (
        ("semantic", SemanticConfig.semantic()),
        ("syntactic", SemanticConfig.syntactic()),
    ):
        scenario = JobFinderScenario(build_jobs_knowledge_base(), spec)
        broker = Broker(build_jobs_knowledge_base(), config=config)
        report = scenario.run(broker)
        reports[mode] = report
        table.add(
            mode,
            report.subscriptions,
            report.publications,
            report.matches,
            report.semantic_matches,
            report.deliveries,
        )
    table.print()

    semantic, syntactic = reports["semantic"], reports["syntactic"]
    missed = semantic.matches - syntactic.matches
    print(
        f"syntactic matching missed {missed} of {semantic.matches} connections "
        f"({missed / max(1, semantic.matches):.0%})"
    )

    per_company = Table("matches per company (semantic mode)", ["company", "matches"])
    for name, count in sorted(semantic.per_company_matches.items()):
        per_company.add(name, count)
    per_company.print()


if __name__ == "__main__":
    main()

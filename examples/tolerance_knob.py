"""The information-loss tolerance knob (paper §3.2 / claim C4).

"Some users may be satisfied with fewer results for their semantic
subscriptions, if the matching would be faster … one may restrict the
level of a match generality."  This example sweeps the per-subscription
generality bound and shows recall falling and the derived-event count
(the work the engine does) falling with it.

Run:  python examples/tolerance_knob.py
"""

from repro import SemanticConfig, SToPSS, parse_event, parse_subscription
from repro.metrics import Table
from repro.ontology.domains import build_jobs_knowledge_base
from repro.workload import SemanticSpec, SemanticWorkloadGenerator


def main() -> None:
    kb = build_jobs_knowledge_base()
    generator = SemanticWorkloadGenerator(kb, SemanticSpec.jobs(seed=7))
    subscriptions = generator.subscriptions(60)
    events = generator.events(40)

    table = Table(
        "tolerance sweep",
        ["max_generality", "matches", "avg derived events / publication"],
    )
    for bound in (0, 1, 2, 3, None):
        engine = SToPSS(kb, config=SemanticConfig(max_generality=bound))
        for sub in subscriptions:
            engine.subscribe(sub)
        matches = 0
        derived = 0
        for event in events:
            result = engine.explain(event)
            derived += len(result.derived)
            matches += len(engine.publish(event))
        table.add(
            "unlimited" if bound is None else bound,
            matches,
            derived / len(events),
        )
        for sub in subscriptions:
            engine.unsubscribe(sub.sub_id)
    table.print()

    # The per-subscription flavor: an entry-level recruiter caps generality.
    engine = SToPSS(kb)
    engine.subscribe(parse_subscription("(skill = software development)", sub_id="open"))
    engine.subscribe(
        parse_subscription(
            "(skill = software development)", sub_id="entry-level", max_generality=1
        )
    )
    event = parse_event("(skill, COBOL programming)")  # two levels below
    print("publishing", event.format())
    for match in engine.publish(event):
        print(f"  -> {match.subscription.sub_id} (generality {match.generality})")
    print("('entry-level' filtered the distance-2 match)")


if __name__ == "__main__":
    main()

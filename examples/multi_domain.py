"""Multi-domain S-ToPSS: three domain ontologies in one broker, bridged
by inter-domain mapping functions (paper §3.2 / claim C3).

A hardware reseller subscribes in the *electronics* domain; a candidate
resume published in the *jobs* domain reaches it through the
jobs→electronics bridge rule plus the electronics concept hierarchy —
"witnessing how seamlessly unrelated objects end up matching" (§4).

Run:  python examples/multi_domain.py
"""

from repro import SToPSS, parse_event, parse_subscription
from repro.metrics import Table
from repro.ontology.domains import build_demo_knowledge_base


def main() -> None:
    kb = build_demo_knowledge_base()
    engine = SToPSS(kb)

    stats_table = Table("knowledge base domains", ["domain", "concepts", "depth"])
    for domain, tstats in kb.stats()["domains"].items():
        stats_table.add(domain, tstats["concepts"], tstats["depth"])
    stats_table.print()

    engine.subscribe(parse_subscription("(device = computer)", sub_id="hw-reseller"))
    engine.subscribe(parse_subscription("(body_style = motor vehicle)", sub_id="car-dealer"))
    engine.subscribe(parse_subscription("(degree = graduate degree)", sub_id="recruiter"))

    publications = [
        ("jobs resume", "(skill, COBOL programming)(degree, PhD)"),
        ("vehicle listing", "(body_style, SUV)(price, 30000)"),
        ("cross-domain resume", "(skill, automotive software)(graduation_year, 1995)"),
    ]

    for label, text in publications:
        event = parse_event(text)
        print(f"--- publishing {label}: {event.format()}")
        for match in engine.publish(event):
            print(match.explain())
            print()


if __name__ == "__main__":
    main()

"""Quickstart: the paper's running example in ten lines.

A recruiter subscribes for Toronto PhDs with 4+ years of experience; a
candidate publishes a resume that — syntactically — shares almost no
vocabulary with the subscription.  S-ToPSS matches them anyway and
explains why.

Run:  python examples/quickstart.py
"""

from repro import SemanticConfig, SToPSS, parse_event, parse_subscription
from repro.ontology.domains import build_jobs_knowledge_base


def main() -> None:
    engine = SToPSS(build_jobs_knowledge_base())

    # Paper §1, subscription S:
    engine.subscribe(
        parse_subscription(
            "(university = Toronto) and (degree = PhD) "
            "and (professional experience >= 4)",
            sub_id="recruiter",
        )
    )

    # Paper §1, event E:
    resume = parse_event(
        "(school, Toronto)(degree, PhD)"
        "(work experience, true)(graduation year, 1990)"
    )

    print(f"mode: {engine.mode}")
    for match in engine.publish(resume):
        print()
        print(match.explain())

    # The same publication in syntactic mode finds nothing — exactly the
    # limitation of conventional content-based pub/sub the paper opens with.
    engine.reconfigure(SemanticConfig.syntactic())
    print(f"\nmode: {engine.mode}")
    print(f"matches: {len(engine.publish(resume))}")


if __name__ == "__main__":
    main()

"""The full Figure 2 demonstration: workload generator -> web
application -> S-ToPSS -> notification engine over four transports.

Companies register and subscribe through the HTTP surface, candidates
publish resumes, and the notification engine delivers matches over
SMTP/SMS/TCP/UDP.  The run is seeded and fully reproducible.

Run:  python examples/jobfinder_demo.py
"""

from repro.broker import Broker
from repro.metrics import Table
from repro.ontology.domains import build_jobs_knowledge_base
from repro.webapp import JobFinderWebApp
from repro.workload import JobFinderScenario, JobFinderSpec


def main() -> None:
    kb = build_jobs_knowledge_base()
    scenario = JobFinderScenario(kb, JobFinderSpec(n_companies=8, n_candidates=24, seed=2003))
    web = JobFinderWebApp(Broker(build_jobs_knowledge_base()))

    # --- companies register and subscribe through the web app ------------
    company_ids = {}
    for company in scenario.companies:
        response = web.post(
            "/clients",
            {
                "name": company.name,
                "role": "subscriber",
                "email": f"hr@{company.name.lower()}.example",
                "sms": f"+1-555-{hash(company.name) % 10000:04d}",
            },
            json=True,
        )
        company_ids[company.name] = response.json()["client_id"]
        for subscription in company.subscriptions:
            web.post(
                "/subscriptions",
                {
                    "client_id": company_ids[company.name],
                    "subscription": subscription.format(),
                },
                json=True,
            )

    # --- candidates publish resumes ---------------------------------------
    total_matches = 0
    sample_explanation = ""
    for candidate in scenario.candidates:
        pid = web.post(
            "/clients", {"name": candidate.name, "role": "publisher"}, json=True
        ).json()["client_id"]
        payload = web.post(
            "/publications",
            {"client_id": pid, "event": candidate.resume.format()},
            json=True,
        ).json()
        total_matches += len(payload["matches"])
        if payload["matches"] and not sample_explanation:
            sample_explanation = payload["matches"][0]["explanation"]

    # --- report -------------------------------------------------------------
    table = Table(
        "job-finder demo (Figure 2)",
        ["companies", "candidates", "subscriptions", "matches"],
    )
    table.add(
        len(scenario.companies),
        len(scenario.candidates),
        sum(len(c.subscriptions) for c in scenario.companies),
        total_matches,
    )
    table.print()

    notifier = web.broker.notifier.snapshot()
    transport_table = Table("notification deliveries", ["transport", "delivered"])
    for transport, count in sorted(notifier["per_transport"].items()):
        transport_table.add(transport, count)
    transport_table.print()

    print("sample match explanation:")
    print(sample_explanation)


if __name__ == "__main__":
    main()
